//! The federated simulation engine.
//!
//! Historically a single ~450-line struct that owned selection, failure
//! injection, local training, accounting, aggregation and evaluation all at
//! once; now a thin driver over the layered [`crate::runtime`]: a
//! [`Sampler`] owns *who* participates, a
//! [`ClientExecutor`] owns the
//! rayon-parallel local-training fan-out, a [`Scheduler`] owns *when*
//! results fold into the global model, and a [`VirtualClock`] plus
//! per-client [`DeviceProfiles`] turn the Appendix-A cost accounting
//! (FLOPs, bytes) into virtual seconds.
//!
//! Two schedulers ship: [`RunMode::Sync`] reproduces the paper's §III-A
//! synchronous round loop **bit-for-bit** (pinned by the golden regression
//! test in `tests/golden_sync.rs`), and [`RunMode::SemiAsync`] is a
//! FedBuff-style buffered aggregator for straggler-dominated federations.
//! The engine keeps doing the bookkeeping the paper's evaluation is built
//! on: participation gaps (FedTrip's `xi`), cumulative communication bytes,
//! cumulative local-compute FLOPs, per-round test accuracy, and — new with
//! the runtime split — the virtual wall-clock behind a time-to-accuracy
//! metric.

use crate::algorithms::{Algorithm, ClientStateStore};
use crate::compression::{CompressionKind, Compressor};
use crate::costs::CostModel;
use crate::runtime::ClientExecutor;
use crate::runtime::{
    AvailabilityModel, ClientSizes, DeviceProfiles, EdgeTier, RuntimeCtx, Sampler, Scheduler,
    SchedulerState, SemiAsync, StepOutput, Synchronous, UtilityTable, VirtualClock,
};
pub use crate::runtime::{RunMode, SelectionStrategy};
use fedtrip_data::partition::{HeterogeneityKind, Partition};
use fedtrip_data::synth::{DatasetKind, SyntheticVision};
use fedtrip_models::ModelKind;
use fedtrip_tensor::optim::LrSchedule;
use fedtrip_tensor::{Sequential, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Full configuration of one federated simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Dataset preset.
    pub dataset: DatasetKind,
    /// Model architecture.
    pub model: ModelKind,
    /// Label-skew regime.
    pub heterogeneity: HeterogeneityKind,
    /// Federation size `N` (paper: 10, or 50 for the scalability study).
    pub n_clients: usize,
    /// Clients selected per round `K` (paper: 4). In semi-async mode this
    /// is the training concurrency the scheduler maintains.
    pub clients_per_round: usize,
    /// Communication rounds `T` (paper: 100). In semi-async mode one round
    /// == one buffer fold.
    pub rounds: usize,
    /// Local epochs per round (paper default 1; Table VII uses 5 and 10).
    pub local_epochs: usize,
    /// Mini-batch size (paper: 50).
    pub batch_size: usize,
    /// Client learning rate (paper: 0.01).
    pub lr: f32,
    /// Momentum for methods that train with SGDm (paper: 0.9).
    pub momentum: f32,
    /// Master seed; everything (init, partition, selection, shuffling,
    /// data synthesis, device profiles) derives from it.
    pub seed: u64,
    /// Held-out test samples per class for evaluation.
    pub test_per_class: usize,
    /// Override the per-client sample count (scale-down knob for CI /
    /// laptop runs; `None` = the paper's Table II value).
    pub client_samples_override: Option<usize>,
    /// Evaluate the global model every this many rounds.
    pub eval_every: usize,
    /// Client selection strategy (paper: uniform).
    pub selection: SelectionStrategy,
    /// Straggler injection: probability that a selected client fails to
    /// report back this round (the server aggregates the survivors; at
    /// least one client always survives). Paper: 0.
    pub failure_prob: f32,
    /// Learning-rate schedule across rounds (paper: constant).
    pub lr_schedule: LrSchedule,
    /// Aggregation scheduler (paper: synchronous).
    pub mode: RunMode,
    /// Device heterogeneity: maximum compute-speed spread across clients
    /// (`>= 1`; `1.0` = every client is the reference device). Only
    /// affects the virtual clock, never training results.
    pub device_het: f32,
    /// Semi-async buffer size `B` — arrivals folded per server step
    /// (`0` = auto: `max(1, K / 2)`). Ignored in sync mode.
    pub async_buffer: usize,
    /// Semi-async staleness-discount exponent `a` in `1 / (1 + s)^a`.
    /// Ignored in sync mode.
    pub staleness_exponent: f32,
    /// Upload codec applied to each client's parameter update (and any
    /// method-specific uplink extras). [`CompressionKind::None`] keeps the
    /// engine bit-identical to the uncompressed paper setting.
    pub compression: CompressionKind,
    /// Client-side error feedback: carry each round's encoding residual
    /// (`update - decode(encode(update))`) into the next participation so
    /// dropped mass is retransmitted instead of lost. No-op for
    /// [`CompressionKind::None`].
    pub error_feedback: bool,
    /// Edge aggregators `E` in the hierarchical aggregation tier: clients
    /// shard by `client mod E`, each edge folds its own cohort on its own
    /// clock and ships one summary uplink to the root per fold. `1` (the
    /// default) colocates the single edge with the root — the flat fold,
    /// bit-identical to the pre-tier engine.
    pub edges: usize,
    /// Diurnal availability cycle length in rounds (`0` = always-on,
    /// bit-identical to the pre-availability engine). Each client draws a
    /// seed-derived phase and is reachable on
    /// `round(availability_on_fraction × period)` rounds of every cycle —
    /// see [`crate::runtime::AvailabilityModel`].
    pub availability_period: usize,
    /// Fraction of each availability cycle a client is reachable; must be
    /// in `(0, 1]` when the diurnal trace is on (ignored otherwise).
    pub availability_on_fraction: f32,
    /// Churn join window in rounds (`0` = no churn): each client joins at
    /// a seed-derived round in `[0, join_window]` and later leaves for
    /// good, its state evicted from the sparse store.
    pub churn_join_window: usize,
    /// Minimum churn residency in rounds — a joined client stays for a
    /// seed-derived lifetime in `[residency, 2·residency)`. Must be
    /// positive when churn is on.
    pub churn_residency: usize,
    /// Synchronous reporting deadline in virtual seconds (`0` = off):
    /// clients whose round duration would exceed it are dropped from the
    /// fold and the round barrier is capped at the deadline. Ignored in
    /// semi-async mode (buffered aggregation already tolerates
    /// stragglers).
    pub deadline_secs: f32,
    /// Downlink codec applied to the server's global-model broadcast.
    /// [`CompressionKind::None`] keeps the dense full-model send of the
    /// paper setting, bit-identical to the pre-delta engine. Any other
    /// codec switches the broadcast to compressed **deltas** against the
    /// last broadcast, with server-side error feedback: clients
    /// reconstruct their view incrementally, periodic resyncs and
    /// on-demand dense sends (joiners, pre-delta restores) keep the view
    /// anchored.
    pub downlink_compression: CompressionKind,
    /// Periodic full-model resync interval `R` for delta broadcasts: every
    /// `R`-th round the server sends the dense global model and clears the
    /// downlink residual (`0` = never resync; joiners still receive dense
    /// bases on demand). Ignored when the downlink is dense.
    pub resync_interval: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::Cnn,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 10,
            clients_per_round: 4,
            rounds: 100,
            local_epochs: 1,
            batch_size: 50,
            lr: 0.01,
            momentum: 0.9,
            seed: 2023,
            test_per_class: 50,
            client_samples_override: None,
            eval_every: 1,
            selection: SelectionStrategy::Uniform,
            failure_prob: 0.0,
            lr_schedule: LrSchedule::Constant,
            mode: RunMode::Sync,
            device_het: 1.0,
            async_buffer: 0,
            staleness_exponent: 0.5,
            compression: CompressionKind::None,
            error_feedback: false,
            edges: 1,
            availability_period: 0,
            availability_on_fraction: 0.5,
            churn_join_window: 0,
            churn_residency: 0,
            deadline_secs: 0.0,
            downlink_compression: CompressionKind::None,
            resync_interval: 0,
        }
    }
}

impl SimulationConfig {
    /// The effective semi-async buffer size `B` (resolves the `0 = auto`
    /// convention to `max(1, K / 2)`).
    pub fn effective_buffer(&self) -> usize {
        if self.async_buffer == 0 {
            (self.clients_per_round / 2).max(1)
        } else {
            self.async_buffer
        }
    }

    /// Check the invariants [`Simulation::new`] would otherwise assert
    /// (and panic on). Used by checkpoint restore so a corrupted or
    /// hand-edited snapshot surfaces a clean error instead of a panic.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clients == 0 {
            return Err("need at least one client".into());
        }
        if self.clients_per_round == 0 || self.clients_per_round > self.n_clients {
            return Err("clients_per_round must be in 1..=n_clients".into());
        }
        if self.rounds == 0 {
            return Err("need at least one round".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        if self.device_het.is_nan() || self.device_het < 1.0 {
            return Err("device_het must be >= 1".into());
        }
        if self.client_samples_override == Some(0) {
            return Err("client_samples_override must be positive".into());
        }
        if self.staleness_exponent.is_nan() || self.staleness_exponent < 0.0 {
            return Err("staleness exponent must be non-negative".into());
        }
        if self.edges == 0 {
            return Err("need at least one edge aggregator".into());
        }
        if self.availability_period > 0
            && !(self.availability_on_fraction > 0.0 && self.availability_on_fraction <= 1.0)
        {
            return Err("availability_on_fraction must be in (0, 1]".into());
        }
        if self.churn_join_window > 0 && self.churn_residency == 0 {
            return Err("churn requires a positive residency".into());
        }
        if self.deadline_secs.is_nan() || self.deadline_secs < 0.0 {
            return Err("deadline_secs must be non-negative".into());
        }
        Ok(())
    }

    /// The availability model this configuration describes (always-on when
    /// both the diurnal trace and churn are disabled).
    pub fn availability_model(&self) -> AvailabilityModel {
        AvailabilityModel::new(
            self.seed,
            self.n_clients,
            self.availability_period,
            self.availability_on_fraction,
            self.churn_join_window,
            self.churn_residency,
        )
    }
}

/// Measurements of one communication round (sync) / server fold (semi-async).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number (1-based).
    pub round: usize,
    /// Test accuracy of the aggregated global model (`None` when this round
    /// was not an evaluation round).
    pub accuracy: Option<f64>,
    /// Mean local training loss over the folded clients.
    pub mean_loss: f64,
    /// Cumulative communication in bytes (up + down, all clients, including
    /// method-specific extras, plus edge→root summary uplinks when the
    /// hierarchical tier runs more than one edge).
    pub cum_comm_bytes: f64,
    /// Cumulative local computation in FLOPs (model fwd/bwd + attach ops).
    pub cum_flops: f64,
    /// The clients whose results folded this round (selection order in
    /// sync mode, virtual-arrival order in semi-async mode).
    pub selected: Vec<usize>,
    /// Virtual wall-clock at the end of this round, in seconds (device
    /// compute + link time under the per-client [`DeviceProfiles`]).
    pub virtual_time: f64,
    /// Mean staleness of the folded updates (always `0` in sync mode).
    pub mean_staleness: f64,
    /// Uplink bytes this round (all folded clients, encoded update plus
    /// encoded method extras, plus the participating edges' summary uplinks
    /// when `E > 1` — what the virtual clock actually charged).
    pub comm_bytes_up: f64,
    /// Uplink compression ratio: dense f32 upload bytes over encoded
    /// upload bytes (`1.0` when compression is off).
    pub compression_ratio: f64,
    /// Downlink bytes this round: per folded client a dense full-model
    /// send (resync rounds, joiners, pre-delta restores — and every round
    /// when the downlink codec is off) or an encoded delta broadcast, plus
    /// the root→edge broadcast relays when `E > 1` rides a lossy downlink
    /// codec.
    pub comm_bytes_down: f64,
    /// Downlink compression ratio: dense f32 broadcast bytes over the
    /// per-client bytes actually charged (`1.0` when the downlink is
    /// dense; edge relays excluded).
    pub compression_ratio_down: f64,
}

/// A clean (non-panicking) error for a checkpoint/config mismatch at
/// restore time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot's global parameter vector does not match this
    /// simulation's model.
    GlobalSizeMismatch {
        /// Parameters in the snapshot.
        snapshot: usize,
        /// Parameters this simulation's model has.
        expected: usize,
    },
    /// A client-state entry is invalid for this federation (out-of-range
    /// id or duplicate).
    InvalidClientStates(String),
    /// The snapshot's recorded configuration is internally inconsistent
    /// (would fail [`Simulation::new`]'s invariants).
    InvalidConfig(String),
    /// The number of round records does not match the recorded round
    /// counter.
    RecordsMismatch {
        /// Records carried by the snapshot.
        records: usize,
        /// Rounds the snapshot claims completed.
        round: usize,
    },
    /// The snapshot's per-edge clock list does not match the configured
    /// edge-tier width.
    EdgeClocksMismatch {
        /// Edge clocks in the snapshot.
        snapshot: usize,
        /// Edge aggregators the configuration asks for.
        expected: usize,
    },
    /// The checkpoint file itself could not be read, parsed, or recognized
    /// (I/O failure, malformed JSON, unsupported format version).
    Snapshot(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::GlobalSizeMismatch { snapshot, expected } => write!(
                f,
                "snapshot holds {snapshot} global parameters but the configured model has {expected}"
            ),
            RestoreError::InvalidClientStates(msg) => {
                write!(f, "invalid client states: {msg}")
            }
            RestoreError::InvalidConfig(msg) => {
                write!(f, "invalid snapshot configuration: {msg}")
            }
            RestoreError::RecordsMismatch { records, round } => write!(
                f,
                "snapshot carries {records} round records but claims {round} completed rounds"
            ),
            RestoreError::EdgeClocksMismatch { snapshot, expected } => write!(
                f,
                "snapshot carries {snapshot} edge clocks but the configuration has {expected} edge aggregators"
            ),
            RestoreError::Snapshot(msg) => write!(f, "cannot load checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A running federated simulation.
pub struct Simulation {
    cfg: SimulationConfig,
    algorithm: Box<dyn Algorithm>,
    dataset: SyntheticVision,
    partition: Partition,
    template: Sequential,
    global: Vec<f32>,
    states: ClientStateStore,
    test_x: Tensor,
    test_y: Vec<usize>,
    round: usize,
    records: Vec<RoundRecord>,
    cum_comm_bytes: f64,
    cum_flops: f64,
    sampler: Sampler,
    profiles: DeviceProfiles,
    clock: VirtualClock,
    edges: EdgeTier,
    scheduler: Box<dyn Scheduler>,
    compressor: Box<dyn Compressor>,
    /// Downlink broadcast codec (`Identity` = dense full-model sends).
    down_codec: Box<dyn Compressor>,
    /// The clients' reconstructed view of the global model under delta
    /// broadcasts; empty (unused) when the downlink is dense. Invariant
    /// (pinned by `tests/downlink.rs`): `broadcast_view +
    /// broadcast_residual == broadcast_last` after every broadcast.
    broadcast_view: Vec<f32>,
    /// Global parameters at the last broadcast — the delta reference
    /// `w_broadcast_base`; empty when the downlink is dense.
    broadcast_last: Vec<f32>,
    /// Server-side error-feedback residual of the downlink codec:
    /// `e' = (delta + e) - decode(encode(delta + e))`.
    broadcast_residual: Option<Vec<f32>>,
    /// Broadcast sync epoch — bumped on every periodic resync; clients
    /// whose [`crate::algorithms::ClientState::sync_epoch`] lags receive an
    /// on-demand dense base before any delta (checkpointed in v7).
    broadcast_epoch: u64,
    /// Per-client statistical utility (most recent observed mean loss),
    /// feeding the Oort selection strategy; checkpointed in v6.
    utility: UtilityTable,
    /// Per-client fold counts (diagnostic for the participation-Gini
    /// metric; bounded by the distinct participants, not `N`; not
    /// checkpointed).
    participation: BTreeMap<usize, u64>,
}

impl Simulation {
    /// Build a simulation: synthesizes the dataset, sets up the (lazy)
    /// partition, initializes the global model, derives device profiles,
    /// and constructs the configured scheduler.
    ///
    /// Construction is O(1) in `n_clients`: client shards, device profiles
    /// and client states all materialize on first participation, so a
    /// 10⁵-client federation costs no more to stand up than a 10-client
    /// one.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (zero clients, `K > N`,
    /// model/dataset shape mismatch, `device_het < 1`).
    pub fn new(cfg: SimulationConfig, mut algorithm: Box<dyn Algorithm>) -> Self {
        assert!(cfg.n_clients > 0, "need at least one client");
        assert!(
            cfg.clients_per_round > 0 && cfg.clients_per_round <= cfg.n_clients,
            "clients_per_round must be in 1..=n_clients"
        );
        assert!(cfg.rounds > 0, "need at least one round");
        assert!(cfg.eval_every > 0, "eval_every must be positive");
        assert!(cfg.device_het >= 1.0, "device_het must be >= 1");
        assert!(cfg.edges > 0, "need at least one edge aggregator");
        assert!(
            cfg.deadline_secs >= 0.0,
            "deadline_secs must be non-negative"
        );

        let dataset = SyntheticVision::new(cfg.dataset, cfg.seed);
        let mut spec = *dataset.spec();
        if let Some(n) = cfg.client_samples_override {
            assert!(n > 0, "client_samples_override must be positive");
            spec.client_samples = n;
        }
        let partition = Partition::build(
            &spec,
            cfg.heterogeneity,
            cfg.n_clients,
            cfg.seed ^ 0x009A_2717,
        );
        let template = cfg
            .model
            .build(&spec.sample_shape(), spec.classes, cfg.seed);
        let global = template.params_flat();
        algorithm.on_init(cfg.n_clients, global.len());
        let (test_x, test_y) = dataset.test_set(cfg.test_per_class);
        let profiles = DeviceProfiles::new(cfg.seed, cfg.n_clients, cfg.device_het as f64);
        let sampler = Sampler::new(
            cfg.seed,
            cfg.clients_per_round,
            cfg.selection,
            cfg.failure_prob,
            ClientSizes::Uniform {
                n_clients: cfg.n_clients,
                samples: partition.client_samples(),
            },
        )
        .with_availability(cfg.availability_model())
        .with_profiles(profiles);
        let scheduler: Box<dyn Scheduler> = match cfg.mode {
            RunMode::Sync => Box::new(Synchronous),
            RunMode::SemiAsync => Box::new(SemiAsync::new(
                cfg.effective_buffer(),
                cfg.staleness_exponent,
            )),
        };
        let down_codec = cfg.downlink_compression.build();
        // delta broadcasts start from a shared base: the clients' view and
        // the delta reference both equal the initial global model. Dense
        // downlinks never touch either, so they stay empty.
        let (broadcast_view, broadcast_last) = if down_codec.is_identity() {
            (Vec::new(), Vec::new())
        } else {
            (global.clone(), global.clone())
        };
        Simulation {
            cfg,
            algorithm,
            dataset,
            partition,
            template,
            global,
            states: ClientStateStore::new(cfg.n_clients),
            test_x,
            test_y,
            round: 0,
            records: Vec::new(),
            cum_comm_bytes: 0.0,
            cum_flops: 0.0,
            sampler,
            profiles,
            clock: VirtualClock::new(),
            edges: EdgeTier::new(cfg.edges),
            scheduler,
            compressor: cfg.compression.build(),
            down_codec,
            broadcast_view,
            broadcast_last,
            broadcast_residual: None,
            broadcast_epoch: 0,
            utility: UtilityTable::new(),
            participation: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.cfg
    }

    /// The partition (e.g. for label-histogram reporting).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Current global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Per-client state (participation history etc.) — sparse: only
    /// clients that have participated hold an entry.
    pub fn client_states(&self) -> &ClientStateStore {
        &self.states
    }

    /// Force every client's state resident (defaults where absent).
    ///
    /// Semantically a no-op — an explicit default entry behaves exactly
    /// like absence — kept as the handle the sparse≡dense equivalence
    /// tests use to run the engine against a dense store. O(N) memory;
    /// never called by the engine itself.
    pub fn prefill_dense_states(&mut self) {
        self.states.prefill_dense();
    }

    /// Round records so far.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Rounds completed.
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// Current virtual wall-clock in seconds.
    pub fn virtual_time(&self) -> f64 {
        self.clock.now()
    }

    /// Per-client device profiles in effect (derived lazily per client).
    pub fn device_profiles(&self) -> DeviceProfiles {
        self.profiles
    }

    /// A copy of the global model as a ready-to-use network.
    pub fn global_model(&self) -> Sequential {
        let mut net = self.template.clone();
        net.set_params_flat(&self.global);
        net
    }

    /// Server-side algorithm state (for checkpointing).
    pub fn algorithm_server_state(&self) -> Vec<Vec<f32>> {
        self.algorithm.server_state()
    }

    /// Restore server-side algorithm state (must run *after* construction —
    /// `Simulation::new` calls `on_init`, which reinitializes it).
    pub fn restore_algorithm_state(&mut self, state: Vec<Vec<f32>>) {
        self.algorithm.restore_server_state(state);
    }

    /// Scheduler position (clock-independent) for checkpointing.
    pub fn scheduler_state(&self) -> SchedulerState {
        self.scheduler.export_state()
    }

    /// The Oort utility table (most recent observed mean loss per client).
    pub fn utility_table(&self) -> &UtilityTable {
        &self.utility
    }

    /// Restore the utility table from checkpointed `(client, mean_loss)`
    /// pairs (must run after [`Simulation::restore_snapshot`] so a resumed
    /// run scores Oort selection identically).
    pub fn restore_utility(&mut self, pairs: impl IntoIterator<Item = (usize, f64)>) {
        self.utility = UtilityTable::from_pairs(pairs);
    }

    /// Per-client fold counts so far (clients that never folded are
    /// absent). Feeds the participation-Gini diagnostic of the `scenario`
    /// bench; not checkpointed.
    pub fn participation_counts(&self) -> &BTreeMap<usize, u64> {
        &self.participation
    }

    /// Restore engine position from a checkpoint (see
    /// [`crate::checkpoint::Checkpoint`]). Overwrites round counter, global
    /// parameters, client states and records; cumulative accounting and the
    /// virtual clock are recovered from the last record.
    ///
    /// A snapshot that does not fit this simulation — wrong parameter
    /// count, client ids beyond the configured federation, inconsistent
    /// record count — returns a [`RestoreError`] instead of panicking, so a
    /// config/checkpoint mismatch surfaces as a clean error the caller can
    /// report. On error the simulation is left untouched.
    pub fn restore_snapshot(
        &mut self,
        round: usize,
        global: Vec<f32>,
        states: impl IntoIterator<Item = (usize, crate::algorithms::ClientState)>,
        records: Vec<RoundRecord>,
    ) -> Result<(), RestoreError> {
        if global.len() != self.global.len() {
            return Err(RestoreError::GlobalSizeMismatch {
                snapshot: global.len(),
                expected: self.global.len(),
            });
        }
        let store = ClientStateStore::from_entries(self.cfg.n_clients, states)
            .map_err(RestoreError::InvalidClientStates)?;
        if records.len() != round {
            return Err(RestoreError::RecordsMismatch {
                records: records.len(),
                round,
            });
        }
        self.round = round;
        self.global = global;
        self.states = store;
        if let Some(last) = records.last() {
            self.cum_comm_bytes = last.cum_comm_bytes;
            self.cum_flops = last.cum_flops;
            self.clock.restore(last.virtual_time);
        }
        self.records = records;
        Ok(())
    }

    /// Per-edge clock instants of the hierarchical tier, in edge order
    /// (checkpoint capture).
    pub fn edge_clock_times(&self) -> Vec<f64> {
        self.edges.clock_times()
    }

    /// Downlink broadcast state for checkpoint capture:
    /// `(view, last, residual, epoch)`. The vectors are empty when the
    /// downlink is dense — there is nothing to carry.
    pub fn broadcast_state(&self) -> (&[f32], &[f32], Option<&[f32]>, u64) {
        (
            &self.broadcast_view,
            &self.broadcast_last,
            self.broadcast_residual.as_deref(),
            self.broadcast_epoch,
        )
    }

    /// Restore the downlink broadcast state from a checkpoint. Must run
    /// *after* [`Simulation::restore_snapshot`] (it anchors empty snapshot
    /// vectors — dense-downlink captures, pre-v7 migrations — to the
    /// restored global model). A non-empty vector whose length does not
    /// match the model returns a clean [`RestoreError`] and leaves the
    /// simulation untouched.
    pub fn restore_broadcast(
        &mut self,
        view: Vec<f32>,
        last: Vec<f32>,
        residual: Option<Vec<f32>>,
        epoch: u64,
    ) -> Result<(), RestoreError> {
        let expected = self.global.len();
        for v in [Some(&view), Some(&last), residual.as_ref()]
            .into_iter()
            .flatten()
        {
            if !v.is_empty() && v.len() != expected {
                return Err(RestoreError::GlobalSizeMismatch {
                    snapshot: v.len(),
                    expected,
                });
            }
        }
        if !self.down_codec.is_identity() {
            self.broadcast_view = if view.is_empty() {
                self.global.clone()
            } else {
                view
            };
            self.broadcast_last = if last.is_empty() {
                self.global.clone()
            } else {
                last
            };
            self.broadcast_residual = residual.filter(|r| !r.is_empty());
        }
        self.broadcast_epoch = epoch;
        Ok(())
    }

    /// Restore the runtime layer from a checkpoint: the exact virtual-clock
    /// instant (which can sit past the last record's fold time while
    /// arrivals were being collected), the per-edge clocks of the
    /// hierarchical tier, and the scheduler's in-flight state. A snapshot
    /// whose edge-clock list does not match the configured tier width
    /// returns a clean [`RestoreError`] and leaves the simulation untouched.
    pub fn restore_runtime(
        &mut self,
        clock_now: f64,
        edge_clocks: &[f64],
        scheduler: SchedulerState,
    ) -> Result<(), RestoreError> {
        if edge_clocks.len() != self.edges.n_edges() {
            return Err(RestoreError::EdgeClocksMismatch {
                snapshot: edge_clocks.len(),
                expected: self.edges.n_edges(),
            });
        }
        self.clock.restore(clock_now);
        self.edges.restore_times(edge_clocks);
        self.scheduler.restore_state(scheduler);
        Ok(())
    }

    /// The Appendix-A cost model for this configuration (uses the nominal
    /// iteration count `ceil(samples / batch) * epochs`).
    pub fn cost_model(&self) -> CostModel {
        let samples = self.partition.client_samples();
        CostModel {
            n_params: self.template.num_params(),
            fp_per_sample: self.template.flops_forward(),
            bp_per_sample: self.template.flops_backward(),
            batch_size: self.cfg.batch_size,
            local_iterations: samples.div_ceil(self.cfg.batch_size) * self.cfg.local_epochs,
            local_samples: samples,
        }
    }

    /// Execute one server step (sync: one communication round; semi-async:
    /// one buffer fold); returns the new record.
    pub fn run_round(&mut self) -> &RoundRecord {
        let t = self.round + 1;

        // accounting basis: every method exchanges |w| parameters each way
        // plus the attach-cost extras. Each direction rides its own codec
        // (dense = the identity codec), so the clock charges exactly the
        // bytes the compressors would emit: the uplink encodes the update
        // (+ uplink extras), the downlink encodes the broadcast delta —
        // except for dense full-model sends (resyncs, joiners), charged at
        // f32 width.
        let n_params = self.global.len();
        let cost = self.cost_model();
        let attach = self.algorithm.attach_cost(&cost);
        let f32_bytes = std::mem::size_of::<f32>();
        let down_bytes = ((n_params + attach.down_params) * f32_bytes) as f64;
        let dense_up_bytes = ((n_params + attach.up_params) * f32_bytes) as f64;
        let up_bytes = (self.compressor.encoded_len(n_params)
            + if attach.up_params > 0 {
                self.compressor.encoded_len(attach.up_params)
            } else {
                0
            }) as f64;
        let delta_down = !self.down_codec.is_identity();
        let delta_down_bytes = if delta_down {
            (self.down_codec.encoded_len(n_params)
                + if attach.down_params > 0 {
                    self.down_codec.encoded_len(attach.down_params)
                } else {
                    0
                }) as f64
        } else {
            down_bytes
        };

        // delta-broadcast step: encode the server's movement since the last
        // broadcast through the downlink codec with error feedback, and
        // advance the clients' reconstructed view by what survived the
        // wire. Every `resync_interval`-th round sends the dense model
        // instead, clearing the residual and bumping the sync epoch so
        // every client re-anchors. Dense downlinks skip all of this — the
        // pre-delta path, bit for bit.
        let resync_round = delta_down
            && self.cfg.resync_interval > 0
            && t.is_multiple_of(self.cfg.resync_interval);
        if delta_down {
            if resync_round {
                self.broadcast_view.clone_from(&self.global);
                self.broadcast_last.clone_from(&self.global);
                self.broadcast_residual = None;
                self.broadcast_epoch += 1;
            } else {
                let delta = fedtrip_tensor::vecops::sub(&self.global, &self.broadcast_last);
                let (decoded, _wire) = crate::compression::error_feedback_step(
                    self.down_codec.as_ref(),
                    &delta,
                    &mut self.broadcast_residual,
                    true,
                );
                fedtrip_tensor::vecops::axpy(&mut self.broadcast_view, 1.0, &decoded);
                self.broadcast_last.clone_from(&self.global);
            }
        }

        // edge links: the merged fold's summary uplink has the wire shape
        // of one client upload and rides the uplink codec; under delta
        // broadcasts the root additionally relays this round's broadcast
        // (dense on resyncs, encoded delta otherwise) to each
        // participating edge. Both are free when the single edge is
        // colocated with the root (E = 1), and the relay adds exactly 0.0
        // when the downlink is dense, keeping the legacy accounting
        // bit-identical.
        let edge_uplink_bytes = if self.cfg.edges > 1 { up_bytes } else { 0.0 };
        let edge_down_bytes = if self.cfg.edges > 1 && delta_down {
            if resync_round {
                down_bytes
            } else {
                delta_down_bytes
            }
        } else {
            0.0
        };
        let edge_uplink_secs = crate::costs::edge_uplink_secs(edge_uplink_bytes + edge_down_bytes);

        let StepOutput {
            fold,
            folded,
            participants,
            edges_active,
        } = {
            let mut rt = RuntimeCtx {
                exec: ClientExecutor {
                    cfg: &self.cfg,
                    dataset: &self.dataset,
                    partition: &self.partition,
                    template: &self.template,
                    compressor: self.compressor.as_ref(),
                    down_delta: delta_down,
                    resync_round,
                    broadcast_epoch: self.broadcast_epoch,
                },
                sampler: &self.sampler,
                profiles: &self.profiles,
                algorithm: self.algorithm.as_ref(),
                clock: &mut self.clock,
                // under delta broadcasts clients train from their
                // reconstructed view (what actually travelled the wire);
                // the server's true model still aggregates and evaluates
                global: if delta_down {
                    &self.broadcast_view
                } else {
                    &self.global
                },
                states: &mut self.states,
                comm_up_bytes: up_bytes,
                comm_down_dense_bytes: down_bytes,
                comm_down_delta_bytes: delta_down_bytes,
                edges: &mut self.edges,
                edge_uplink_secs,
                utility: &self.utility,
                deadline_secs: self.cfg.deadline_secs as f64,
            };
            self.scheduler.step(t, &mut rt)
        };

        let mut down_bytes_round = 0.0;
        for o in &folded {
            let down = if o.dense_down {
                down_bytes
            } else {
                delta_down_bytes
            };
            down_bytes_round += down;
            self.cum_comm_bytes += down + up_bytes;
            self.cum_flops += o.train_flops;
        }
        // utility bookkeeping for Oort selection, plus per-client fold
        // counts for the participation-Gini diagnostic
        for o in &folded {
            self.utility.record(o.client, o.mean_loss);
            *self.participation.entry(o.client).or_insert(0) += 1;
        }
        // churn: evict departed clients' state (and utility) the round
        // they leave — a pure function of the round counter, so a resumed
        // run evicts identically
        let avail = *self.sampler.availability();
        if avail.has_churn() {
            let departed: Vec<usize> = self
                .states
                .iter()
                .map(|(c, _)| c)
                .filter(|&c| avail.has_left(c, t))
                .collect();
            for c in departed {
                drop(self.states.take(c));
                self.utility.evict(c);
            }
        }
        // each participating edge shipped one summary to the root, and —
        // under delta broadcasts — received one broadcast relay (both add
        // exactly 0.0 when E = 1, keeping the flat accounting bit-identical)
        let edge_uplink_total = edges_active as f64 * edge_uplink_bytes;
        let edge_down_total = edges_active as f64 * edge_down_bytes;
        self.cum_comm_bytes += edge_uplink_total;
        self.cum_comm_bytes += edge_down_total;
        let mean_loss =
            folded.iter().map(|o| o.mean_loss).sum::<f64>() / folded.len().max(1) as f64;
        let mean_staleness =
            folded.iter().map(|o| o.staleness as f64).sum::<f64>() / folded.len().max(1) as f64;

        // the scheduler already streamed every arrival into `fold`; all
        // that is left is the method's finish step
        self.algorithm.server_finish(&mut self.global, fold, t);

        let accuracy = if t.is_multiple_of(self.cfg.eval_every) {
            Some(self.evaluate())
        } else {
            None
        };

        self.records.push(RoundRecord {
            round: t,
            accuracy,
            mean_loss,
            cum_comm_bytes: self.cum_comm_bytes,
            cum_flops: self.cum_flops,
            selected: participants,
            virtual_time: self.clock.now(),
            mean_staleness,
            comm_bytes_up: up_bytes * folded.len() as f64 + edge_uplink_total,
            compression_ratio: dense_up_bytes / up_bytes,
            comm_bytes_down: down_bytes_round + edge_down_total,
            compression_ratio_down: if down_bytes_round > 0.0 {
                down_bytes * folded.len() as f64 / down_bytes_round
            } else {
                1.0
            },
        });
        self.round = t;
        self.records.last().expect("just pushed") // lint:allow(panic) — record pushed on the line above
    }

    /// Run all configured rounds (continues from wherever the simulation
    /// currently is). Returns the full record history.
    pub fn run(&mut self) -> &[RoundRecord] {
        while self.round < self.cfg.rounds {
            self.run_round();
        }
        &self.records
    }

    /// Raise the configured round budget (used when extending a resumed
    /// run); a target at or below the current budget is a no-op.
    pub fn extend_rounds(&mut self, rounds: usize) {
        if rounds > self.cfg.rounds {
            self.cfg.rounds = rounds;
        }
    }

    /// Test accuracy of the current global model (chunked forward pass).
    pub fn evaluate(&self) -> f64 {
        let mut net = self.global_model();
        evaluate_in_chunks(&mut net, &self.test_x, &self.test_y, 200)
    }

    /// First round at which the evaluated accuracy reached `target`
    /// (the paper's Tables IV and VI metric).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        rounds_to_accuracy(&self.records, target)
    }

    /// Virtual wall-clock (seconds) at which the evaluated accuracy first
    /// reached `target` — the straggler-sensitive companion of
    /// [`Simulation::rounds_to_accuracy`].
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        time_to_accuracy(&self.records, target)
    }

    /// Mean accuracy over the last `n` evaluated rounds (the paper's Fig. 6
    /// "final accuracy" metric).
    pub fn final_accuracy(&self, n: usize) -> f64 {
        final_accuracy(&self.records, n)
    }
}

/// Chunked accuracy evaluation (bounds activation memory on big test sets).
///
/// One scratch tensor is reused across all full-size chunks (plus at most
/// one tail-sized tensor), so evaluation allocates O(chunk) instead of one
/// fresh tensor per chunk.
pub fn evaluate_in_chunks(net: &mut Sequential, x: &Tensor, y: &[usize], chunk: usize) -> f64 {
    let n = y.len();
    assert!(n > 0, "empty test set");
    let elems = x.len() / x.shape()[0];
    let mut shape = x.shape().to_vec();
    shape[0] = chunk.min(n);
    let mut scratch = Tensor::zeros(&shape);
    let mut correct = 0usize;
    let mut off = 0usize;
    while off < n {
        let end = (off + chunk).min(n);
        let rows = end - off;
        if rows != scratch.shape()[0] {
            shape[0] = rows;
            scratch = Tensor::zeros(&shape);
        }
        scratch
            .as_mut_slice()
            .copy_from_slice(&x.as_slice()[off * elems..end * elems]);
        let pred = net.predict(&scratch);
        correct += pred
            .iter()
            .zip(&y[off..end])
            .filter(|(p, t)| p == t)
            .count();
        off = end;
    }
    correct as f64 / n as f64
}

/// First round whose evaluated accuracy reached `target`.
pub fn rounds_to_accuracy(records: &[RoundRecord], target: f64) -> Option<usize> {
    records
        .iter()
        .find(|r| r.accuracy.map(|a| a >= target).unwrap_or(false))
        .map(|r| r.round)
}

/// Virtual wall-clock (seconds) at which the evaluated accuracy first
/// reached `target`.
pub fn time_to_accuracy(records: &[RoundRecord], target: f64) -> Option<f64> {
    records
        .iter()
        .find(|r| r.accuracy.map(|a| a >= target).unwrap_or(false))
        .map(|r| r.virtual_time)
}

/// Mean accuracy over the last `n` evaluated rounds.
pub fn final_accuracy(records: &[RoundRecord], n: usize) -> f64 {
    let accs: Vec<f64> = records.iter().filter_map(|r| r.accuracy).collect();
    if accs.is_empty() {
        return 0.0;
    }
    let tail = &accs[accs.len().saturating_sub(n)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AlgorithmKind, HyperParams};

    fn tiny_cfg(alg_seed: u64) -> SimulationConfig {
        SimulationConfig {
            dataset: DatasetKind::MnistLike,
            model: ModelKind::TinyMlp,
            heterogeneity: HeterogeneityKind::Dirichlet(0.5),
            n_clients: 6,
            clients_per_round: 3,
            rounds: 4,
            local_epochs: 1,
            batch_size: 25,
            lr: 0.05,
            momentum: 0.9,
            seed: alg_seed,
            test_per_class: 5,
            client_samples_override: Some(50),
            eval_every: 1,
            ..SimulationConfig::default()
        }
    }

    fn sim(kind: AlgorithmKind, seed: u64) -> Simulation {
        Simulation::new(tiny_cfg(seed), kind.build(&HyperParams::default()))
    }

    #[test]
    fn runs_configured_rounds_and_records() {
        let mut s = sim(AlgorithmKind::FedAvg, 1);
        let records = s.run();
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert_eq!(r.selected.len(), 3);
            assert!(r.accuracy.is_some());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = sim(AlgorithmKind::FedTrip, 7);
        let mut b = sim(AlgorithmKind::FedTrip, 7);
        a.run();
        b.run();
        assert_eq!(a.global_params(), b.global_params());
        let acc_a: Vec<_> = a.records().iter().map(|r| r.accuracy).collect();
        let acc_b: Vec<_> = b.records().iter().map(|r| r.accuracy).collect();
        assert_eq!(acc_a, acc_b);
    }

    #[test]
    fn different_seeds_select_differently() {
        let mut a = sim(AlgorithmKind::FedAvg, 1);
        let mut b = sim(AlgorithmKind::FedAvg, 2);
        a.run();
        b.run();
        let sel_a: Vec<_> = a.records().iter().map(|r| r.selected.clone()).collect();
        let sel_b: Vec<_> = b.records().iter().map(|r| r.selected.clone()).collect();
        assert_ne!(sel_a, sel_b);
    }

    #[test]
    fn selection_is_k_distinct_sorted_clients() {
        let mut s = sim(AlgorithmKind::FedAvg, 3);
        s.run();
        for r in s.records() {
            let mut sorted = r.selected.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, r.selected);
            assert!(r.selected.iter().all(|&c| c < 6));
        }
    }

    #[test]
    fn participation_gap_bookkeeping() {
        let mut s = sim(AlgorithmKind::FedTrip, 4);
        s.run();
        // every client that participated has last_round set
        let participated: std::collections::HashSet<usize> = s
            .records()
            .iter()
            .flat_map(|r| r.selected.iter().copied())
            .collect();
        for c in 0..6 {
            assert_eq!(
                s.client_states()
                    .get(c)
                    .is_some_and(|st| st.last_round.is_some()),
                participated.contains(&c),
                "client {c}"
            );
        }
        // the store stays sparse: exactly the participants are resident
        assert_eq!(s.client_states().resident(), participated.len());
    }

    #[test]
    fn communication_grows_linearly_per_client() {
        let mut s = sim(AlgorithmKind::FedAvg, 5);
        s.run();
        let w_bytes = s.global_params().len() * 4;
        let per_round = (3 * 2 * w_bytes) as f64;
        for (i, r) in s.records().iter().enumerate() {
            assert!((r.cum_comm_bytes - per_round * (i + 1) as f64).abs() < 1.0);
        }
    }

    #[test]
    fn scaffold_communication_is_double() {
        let mut plain = sim(AlgorithmKind::FedAvg, 6);
        let mut scaf = sim(AlgorithmKind::Scaffold, 6);
        plain.run();
        scaf.run();
        let a = plain.records().last().unwrap().cum_comm_bytes;
        let b = scaf.records().last().unwrap().cum_comm_bytes;
        assert!((b / a - 2.0).abs() < 1e-9, "ratio {}", b / a);
    }

    #[test]
    fn flops_accumulate_and_moon_costs_more() {
        let mut avg = sim(AlgorithmKind::FedAvg, 8);
        let mut moon = sim(AlgorithmKind::Moon, 8);
        avg.run();
        moon.run();
        let fa = avg.records().last().unwrap().cum_flops;
        let fm = moon.records().last().unwrap().cum_flops;
        assert!(fa > 0.0);
        assert!(fm > fa, "MOON {fm} should exceed FedAvg {fa}");
    }

    #[test]
    fn accuracy_improves_over_random_guessing() {
        let mut cfg = tiny_cfg(9);
        cfg.rounds = 12;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        s.run();
        let final_acc = s.final_accuracy(3);
        assert!(
            final_acc > 0.25,
            "accuracy {final_acc} no better than chance (0.1)"
        );
    }

    #[test]
    fn rounds_to_accuracy_helper() {
        let rec = |round: usize, accuracy: Option<f64>, virtual_time: f64| RoundRecord {
            round,
            accuracy,
            mean_loss: 0.0,
            cum_comm_bytes: 0.0,
            cum_flops: 0.0,
            selected: vec![],
            virtual_time,
            mean_staleness: 0.0,
            comm_bytes_up: 0.0,
            compression_ratio: 1.0,
            comm_bytes_down: 0.0,
            compression_ratio_down: 1.0,
        };
        let recs = vec![rec(1, Some(0.3), 10.0), rec(2, Some(0.6), 25.0)];
        assert_eq!(rounds_to_accuracy(&recs, 0.5), Some(2));
        assert_eq!(rounds_to_accuracy(&recs, 0.9), None);
        assert_eq!(time_to_accuracy(&recs, 0.5), Some(25.0));
        assert_eq!(time_to_accuracy(&recs, 0.2), Some(10.0));
        assert_eq!(time_to_accuracy(&recs, 0.9), None);
        assert_eq!(final_accuracy(&recs, 1), 0.6);
        assert!((final_accuracy(&recs, 10) - 0.45).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clients_per_round")]
    fn rejects_k_greater_than_n() {
        let mut cfg = tiny_cfg(1);
        cfg.clients_per_round = 7;
        let _ = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
    }

    #[test]
    #[should_panic(expected = "device_het")]
    fn rejects_sub_unit_device_het() {
        let mut cfg = tiny_cfg(1);
        cfg.device_het = 0.5;
        let _ = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
    }

    #[test]
    fn every_algorithm_completes_a_round() {
        for kind in AlgorithmKind::ALL {
            let mut s = sim(kind, 11);
            s.run_round();
            assert_eq!(s.records().len(), 1, "{}", kind.name());
            assert!(s.records()[0].accuracy.unwrap() > 0.0);
        }
    }

    #[test]
    fn round_robin_visits_everyone_with_constant_gap() {
        let mut cfg = tiny_cfg(13);
        cfg.selection = SelectionStrategy::RoundRobin;
        cfg.rounds = 4; // 4 rounds x 3 clients = 12 slots over 6 clients
        let mut s = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        s.run();
        let mut counts = vec![0usize; 6];
        for r in s.records() {
            for &c in &r.selected {
                counts[c] += 1;
            }
        }
        // perfect rotation: every client participates exactly twice
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn weighted_selection_is_valid_and_deterministic() {
        let mut cfg = tiny_cfg(14);
        cfg.selection = SelectionStrategy::WeightedBySamples;
        let mut a = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        let mut b = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        a.run();
        b.run();
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.selected, rb.selected);
            let mut s = ra.selected.clone();
            s.dedup();
            assert_eq!(s.len(), ra.selected.len(), "duplicate selection");
        }
    }

    #[test]
    fn failure_injection_shrinks_participation_but_never_to_zero() {
        let mut cfg = tiny_cfg(15);
        cfg.failure_prob = 0.7;
        cfg.rounds = 8;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        s.run();
        let mut saw_shrunk = false;
        for r in s.records() {
            assert!(!r.selected.is_empty(), "round {} had no survivors", r.round);
            assert!(r.selected.len() <= 3);
            if r.selected.len() < 3 {
                saw_shrunk = true;
            }
        }
        assert!(
            saw_shrunk,
            "failure injection never dropped anyone at p=0.7"
        );
    }

    #[test]
    fn failure_prob_one_keeps_exactly_one_survivor() {
        let mut cfg = tiny_cfg(16);
        cfg.failure_prob = 1.0;
        cfg.rounds = 3;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        s.run();
        for r in s.records() {
            assert_eq!(r.selected.len(), 1);
        }
    }

    #[test]
    fn lr_schedule_changes_trajectory() {
        use fedtrip_tensor::optim::LrSchedule;
        let mut cfg = tiny_cfg(17);
        cfg.rounds = 6;
        let mut constant =
            Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        let mut decayed_cfg = cfg;
        decayed_cfg.lr_schedule = LrSchedule::StepDecay {
            every: 2,
            factor: 0.1,
        };
        let mut decayed = Simulation::new(
            decayed_cfg,
            AlgorithmKind::FedAvg.build(&HyperParams::default()),
        );
        constant.run();
        decayed.run();
        assert_ne!(constant.global_params(), decayed.global_params());
    }

    #[test]
    fn sync_virtual_time_is_positive_and_strictly_increasing() {
        let mut s = sim(AlgorithmKind::FedAvg, 18);
        s.run();
        let mut prev = 0.0;
        for r in s.records() {
            assert!(
                r.virtual_time > prev,
                "round {}: {}",
                r.round,
                r.virtual_time
            );
            assert_eq!(r.mean_staleness, 0.0);
            prev = r.virtual_time;
        }
        assert_eq!(s.virtual_time(), prev);
    }

    #[test]
    fn device_het_slows_the_virtual_clock_but_not_training() {
        let cfg = tiny_cfg(19);
        let mut het_cfg = cfg;
        het_cfg.device_het = 4.0;
        let mut homo = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        let mut het = Simulation::new(
            het_cfg,
            AlgorithmKind::FedAvg.build(&HyperParams::default()),
        );
        homo.run();
        het.run();
        // identical learning trajectory...
        assert_eq!(homo.global_params(), het.global_params());
        // ...but strictly more virtual time under slower devices
        assert!(het.virtual_time() > homo.virtual_time());
    }

    #[test]
    fn semiasync_mode_runs_and_reports_staleness() {
        let mut cfg = tiny_cfg(20);
        cfg.mode = RunMode::SemiAsync;
        cfg.device_het = 4.0;
        cfg.rounds = 8;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        s.run();
        assert_eq!(s.records().len(), 8);
        let b = cfg.effective_buffer();
        for r in s.records() {
            assert!(!r.selected.is_empty());
            assert!(r.selected.len() <= b);
            assert!(r.accuracy.is_some());
            assert!(r.virtual_time > 0.0);
        }
        // with a 4x speed spread some fold must contain a stale update
        assert!(
            s.records().iter().any(|r| r.mean_staleness > 0.0),
            "no staleness ever observed in semi-async mode"
        );
    }

    #[test]
    fn q8_compression_shrinks_comm_and_reports_ratio() {
        let cfg = tiny_cfg(21);
        let mut q8_cfg = cfg;
        q8_cfg.compression = crate::compression::CompressionKind::Q8;
        q8_cfg.error_feedback = true;
        let mut dense = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        let mut q8 = Simulation::new(q8_cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        dense.run();
        q8.run();
        let d = dense.records().last().unwrap();
        let q = q8.records().last().unwrap();
        assert!(
            q.cum_comm_bytes < d.cum_comm_bytes,
            "{} vs {}",
            q.cum_comm_bytes,
            d.cum_comm_bytes
        );
        assert!(q.comm_bytes_up < d.comm_bytes_up);
        assert_eq!(d.compression_ratio, 1.0);
        // q8 is one byte per value plus an 8-byte header: just under 4x
        assert!(
            q.compression_ratio > 3.5 && q.compression_ratio < 4.0,
            "{}",
            q.compression_ratio
        );
        // ...and the compressed link shortens the round trip
        assert!(q8.virtual_time() < dense.virtual_time());
    }

    #[test]
    fn every_algorithm_completes_a_compressed_round() {
        for kind in AlgorithmKind::ALL {
            let mut cfg = tiny_cfg(22);
            cfg.compression = crate::compression::CompressionKind::Q8;
            cfg.error_feedback = true;
            let mut s = Simulation::new(cfg, kind.build(&HyperParams::default()));
            s.run_round();
            assert_eq!(s.records().len(), 1, "{}", kind.name());
            assert!(s.records()[0].accuracy.unwrap() > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn error_feedback_records_residuals_for_lossy_codecs_only() {
        let mut cfg = tiny_cfg(23);
        cfg.compression = crate::compression::CompressionKind::TopK(0.1);
        cfg.error_feedback = true;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        s.run();
        assert!(
            s.client_states()
                .iter()
                .any(|(_, st)| st.residual.is_some()),
            "no residual recorded under top-k with error feedback"
        );
        // feedback off: residuals never materialize
        let mut cfg = tiny_cfg(23);
        cfg.compression = crate::compression::CompressionKind::TopK(0.1);
        let mut s = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        s.run();
        assert!(s
            .client_states()
            .iter()
            .all(|(_, st)| st.residual.is_none()));
    }

    #[test]
    fn delta_downlink_shrinks_comm_and_reports_ratio() {
        // full participation (K = N) makes the dense/delta schedule exact:
        // round 1 all joiners (dense), resyncs at 3 and 6 (dense), deltas
        // everywhere else
        let mut cfg = tiny_cfg(24);
        cfg.clients_per_round = 6;
        let mut delta_cfg = cfg;
        delta_cfg.downlink_compression = crate::compression::CompressionKind::Q8;
        delta_cfg.resync_interval = 3;
        delta_cfg.rounds = 6;
        let mut dense_cfg = cfg;
        dense_cfg.rounds = 6;
        let mut dense = Simulation::new(
            dense_cfg,
            AlgorithmKind::FedAvg.build(&HyperParams::default()),
        );
        let mut delta = Simulation::new(
            delta_cfg,
            AlgorithmKind::FedAvg.build(&HyperParams::default()),
        );
        dense.run();
        delta.run();
        let d = dense.records().last().unwrap();
        let q = delta.records().last().unwrap();
        assert!(
            q.cum_comm_bytes < d.cum_comm_bytes,
            "{} vs {}",
            q.cum_comm_bytes,
            d.cum_comm_bytes
        );
        // dense downlink reports exactly 1.0 every round
        for r in dense.records() {
            assert_eq!(r.compression_ratio_down, 1.0);
            assert!(r.comm_bytes_down > 0.0);
        }
        // delta rounds (2, 4, 5) charge the q8-encoded broadcast — just
        // under 4x smaller; dense rounds (1 joiners, 3 and 6 resyncs)
        // report exactly 1.0
        for r in delta.records() {
            match r.round {
                2 | 4 | 5 => assert!(
                    r.compression_ratio_down > 3.0,
                    "round {}: {}",
                    r.round,
                    r.compression_ratio_down
                ),
                _ => assert_eq!(
                    r.compression_ratio_down, 1.0,
                    "round {} should be dense",
                    r.round
                ),
            }
        }
        // resync round 3 re-anchors: epoch bumped twice over 6 rounds
        assert_eq!(delta.broadcast_state().3, 2);
    }

    #[test]
    fn every_round_resync_matches_dense_downlink_records() {
        // resync_interval = 1 forces a dense broadcast every round: the
        // delta machinery runs but every send is the full model, so the
        // learning trajectory and the accounting must equal the dense
        // downlink bit for bit (E = 1).
        let cfg = tiny_cfg(25);
        let mut delta_cfg = cfg;
        delta_cfg.downlink_compression = crate::compression::CompressionKind::Q8;
        delta_cfg.resync_interval = 1;
        let mut dense = Simulation::new(cfg, AlgorithmKind::FedTrip.build(&HyperParams::default()));
        let mut delta = Simulation::new(
            delta_cfg,
            AlgorithmKind::FedTrip.build(&HyperParams::default()),
        );
        dense.run();
        delta.run();
        assert_eq!(dense.global_params(), delta.global_params());
        for (a, b) in dense.records().iter().zip(delta.records()) {
            assert_eq!(a.accuracy, b.accuracy);
            assert_eq!(a.cum_comm_bytes, b.cum_comm_bytes);
            assert_eq!(a.comm_bytes_down, b.comm_bytes_down);
            assert_eq!(a.virtual_time, b.virtual_time);
        }
    }

    #[test]
    fn broadcast_view_plus_residual_equals_last_broadcast() {
        // server-side error-feedback mass conservation: after every round,
        // view + residual == the global model as of the last broadcast
        let mut cfg = tiny_cfg(26);
        cfg.downlink_compression = crate::compression::CompressionKind::Q4;
        cfg.resync_interval = 0;
        cfg.rounds = 5;
        let mut s = Simulation::new(cfg, AlgorithmKind::FedAvg.build(&HyperParams::default()));
        for _ in 0..5 {
            s.run_round();
            let (view, last, residual, _) = s.broadcast_state();
            let zero = vec![0.0f32; view.len()];
            let residual = residual.unwrap_or(&zero);
            for ((&v, &r), &l) in view.iter().zip(residual).zip(last) {
                assert!(
                    (v + r - l).abs() < 1e-3,
                    "view {v} + residual {r} != last broadcast {l}"
                );
            }
        }
    }

    #[test]
    fn effective_buffer_auto_rule() {
        let mut cfg = tiny_cfg(1);
        assert_eq!(cfg.effective_buffer(), 1); // K = 3 -> max(1, 1)
        cfg.clients_per_round = 3;
        cfg.async_buffer = 2;
        assert_eq!(cfg.effective_buffer(), 2);
    }
}
