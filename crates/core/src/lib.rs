//! # fedtrip-core
//!
//! The federated-learning engine of the FedTrip reproduction.
//!
//! * [`engine`] — the simulation driver: seeded K-of-N client selection,
//!   parallel local training (rayon), weighted aggregation `w_t = Σ a_k w_k`
//!   (Eq. 2), and per-round evaluation, as a thin loop over [`runtime`].
//! * [`runtime`] — the layered federation runtime the engine composes: a
//!   `Scheduler` (the paper's synchronous barrier, bit-identical, plus a
//!   FedBuff-style semi-async buffered aggregator with staleness-discounted
//!   weights), a `Sampler` (selection + straggler injection), a
//!   `ClientExecutor` (training fan-out), and a `VirtualClock` with
//!   seed-derived per-client `DeviceProfile`s.
//! * [`algorithms`] — the paper's contribution (**FedTrip**, Algorithm 1) and
//!   every baseline it is evaluated against: FedAvg, FedProx, MOON, FedDyn,
//!   SlowMo, plus the Appendix-A comparators SCAFFOLD and MimeLite.
//! * [`costs`] — the analytic resource model of Appendix A / Table VIII:
//!   per-iteration "attaching operation" FLOPs and communication overhead of
//!   every method, composed with model forward/backward FLOPs to reproduce
//!   Tables V and VIII.
//! * [`compression`] — client-upload codecs (8/4-bit affine quantization,
//!   top-k sparsification) with exact encoded-byte accounting and optional
//!   error feedback; the engine charges the compressed bytes to the virtual
//!   clock so codecs trade accuracy-per-round against seconds-per-round.
//! * [`experiment`] — declarative experiment specs with `smoke` / `default` /
//!   `paper` scales, shared by the examples, the integration tests and every
//!   table/figure binary in `fedtrip-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod checkpoint;
pub mod compression;
pub mod costs;
pub mod engine;
pub mod experiment;
pub mod runtime;

pub use algorithms::{Algorithm, AlgorithmKind, HyperParams};
pub use checkpoint::Checkpoint;
pub use compression::{CompressionKind, Compressor};
pub use costs::{AttachCost, CostModel};
pub use engine::{RoundRecord, RunMode, SelectionStrategy, Simulation, SimulationConfig};
pub use experiment::{ExperimentSpec, Scale};
pub use runtime::{DeviceProfile, Sampler, Scheduler, SemiAsync, Synchronous, VirtualClock};

// The canonical import point for the RNG stream-tag registry: the module
// lives in `fedtrip-tensor` (next to `Prng`, below the data/model crates in
// the dependency graph) and is re-exported here for engine-level code.
pub use fedtrip_tensor::rng_tags;
