//! Federated optimization algorithms.
//!
//! The paper's contribution ([`FedTrip`]) plus every baseline of its
//! evaluation: [`FedAvg`], [`FedProx`], [`Moon`], [`FedDyn`], [`SlowMo`],
//! and the Appendix-A comparators [`Scaffold`] and [`MimeLite`].
//!
//! All methods implement the [`Algorithm`] trait: the engine hands each
//! selected client a model loaded with the global parameters and the method
//! runs local training however it likes (`local_train`, called from rayon
//! workers, hence `&self`), then the server **streams** the outcomes into
//! the next global model through a [`ServerFold`] — `server_begin` /
//! `server_fold` per arrival / `server_finish` (`&mut self` — server-side
//! state like SlowMo's momentum buffer lives in the algorithm struct). The
//! provided `server_update` drives the three hooks over a slice for tests
//! and simple embeddings. Per-client persistent state lives in the sparse
//! [`ClientStateStore`]: only clients that have ever participated occupy
//! memory, which is what lets federations scale to 10⁵ clients.

mod fedavg;
mod feddyn;
mod fedprox;
mod fedtrip;
mod mimelite;
mod moon;
mod scaffold;
mod slowmo;
#[cfg(test)]
pub(crate) mod testutil;

pub use fedavg::FedAvg;
pub use feddyn::FedDyn;
pub use fedprox::FedProx;
pub use fedtrip::{FedTrip, FedTripConfig, XiMode};
pub use mimelite::MimeLite;
pub use moon::Moon;
pub use scaffold::Scaffold;
pub use slowmo::SlowMo;

use crate::costs::{AttachCost, CostModel};
use fedtrip_data::loader::BatchIter;
use fedtrip_data::synth::{SampleRef, SyntheticVision};
use fedtrip_tensor::optim::{GradAdjust, Optimizer, SgdMomentum};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use fedtrip_tensor::vecops;
use fedtrip_tensor::{Sequential, Tensor};
use serde::{Deserialize, Serialize};

/// A client's local shard: the dataset generator plus its sample references.
pub struct ClientData<'a> {
    /// The (shared, read-only) procedural dataset.
    pub dataset: &'a SyntheticVision,
    /// Samples owned by this client.
    pub refs: &'a [SampleRef],
}

/// Per-round, per-client context assembled by the engine.
#[derive(Debug, Clone)]
pub struct LocalContext<'a> {
    /// Communication round (1-based).
    pub round: usize,
    /// Client index within the federation.
    pub client_id: usize,
    /// Global model parameters at round start (`w^{t-1}`).
    pub global: &'a [f32],
    /// Rounds since this client last participated (the paper's `xi`);
    /// `None` on first participation.
    pub gap: Option<usize>,
    /// Local epochs per round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Client learning rate.
    pub lr: f32,
    /// Momentum coefficient (methods that use SGDm).
    pub momentum: f32,
    /// Base seed for deriving data-shuffling streams.
    pub seed: u64,
}

impl LocalContext<'_> {
    /// Derive the shuffling RNG for a given epoch, deterministic in
    /// `(seed, round, client, epoch)` regardless of thread scheduling.
    pub fn epoch_rng(&self, epoch: usize) -> Prng {
        Prng::derive(
            self.seed,
            &[
                rng_tags::EPOCH_SHUFFLE,
                self.round as u64,
                self.client_id as u64,
                epoch as u64,
            ],
        )
    }
}

/// Persistent per-client state across rounds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClientState {
    /// Round of last participation.
    pub last_round: Option<usize>,
    /// Historical local model `w̃_k` (FedTrip's negative anchor, MOON's
    /// previous representation model).
    pub historical: Option<Vec<f32>>,
    /// Per-client correction state (FedDyn `h_k`, SCAFFOLD `c_k`).
    pub correction: Option<Vec<f32>>,
    /// Error-feedback residual: the part of this client's last
    /// (compensated) upload the compression codec dropped, retransmitted
    /// on the next participation. `None` until the client first uploads
    /// under a lossy codec with error feedback enabled.
    pub residual: Option<Vec<f32>>,
    /// Broadcast sync epoch: which full-model resync generation this
    /// client's reconstructed downlink view belongs to. A client whose
    /// epoch differs from the server's current one (a churn joiner, a
    /// client restored from a pre-delta checkpoint, or anyone who missed a
    /// resync) receives an on-demand dense broadcast before any delta.
    /// `None` until the client first participates under a delta downlink;
    /// always `None` when the downlink is dense.
    pub sync_epoch: Option<u64>,
}

impl ClientState {
    /// `true` when this state is indistinguishable from a client that never
    /// participated — such entries need not be stored (or serialized) at
    /// all.
    pub fn is_vacant(&self) -> bool {
        self.last_round.is_none()
            && self.historical.is_none()
            && self.correction.is_none()
            && self.residual.is_none()
            && self.sync_epoch.is_none()
    }
}

/// Sparse per-client state storage.
///
/// The engine historically allocated a dense `Vec<ClientState>` — O(N)
/// entries, each able to hold up to three full model vectors — even though
/// only the `K` clients of each round ever touch their state. This store
/// keeps an entry **only for clients that have participated**: a client that
/// was never selected reads as [`ClientState::default`] without occupying
/// memory, so resident state is O(participants-ever), bounded by
/// `rounds × K`, regardless of federation size.
///
/// Iteration order is ascending client id (the map is a `BTreeMap`), which
/// keeps checkpoint serialization deterministic.
#[derive(Debug, Clone, Default)]
pub struct ClientStateStore {
    n_clients: usize,
    entries: std::collections::BTreeMap<usize, ClientState>,
}

impl ClientStateStore {
    /// An empty store for a federation of `n_clients` (no entries resident).
    pub fn new(n_clients: usize) -> Self {
        ClientStateStore {
            n_clients,
            entries: std::collections::BTreeMap::new(),
        }
    }

    /// Rebuild a store from `(client, state)` entries (checkpoint restore).
    ///
    /// Vacant states are dropped rather than stored (they are semantically
    /// identical to absence). Fails on out-of-range client ids or duplicate
    /// entries instead of panicking — a config/checkpoint mismatch must
    /// surface as a clean error.
    pub fn from_entries(
        n_clients: usize,
        entries: impl IntoIterator<Item = (usize, ClientState)>,
    ) -> Result<Self, String> {
        let mut store = ClientStateStore::new(n_clients);
        for (client, state) in entries {
            if client >= n_clients {
                return Err(format!(
                    "client state entry {client} out of range for a federation of {n_clients}"
                ));
            }
            if state.is_vacant() {
                continue;
            }
            if store.entries.insert(client, state).is_some() {
                return Err(format!("duplicate client state entry {client}"));
            }
        }
        Ok(store)
    }

    /// Federation size (the *capacity*, not the resident entry count).
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Number of resident entries (clients that have ever participated).
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Whether a client currently holds a resident entry.
    pub fn is_resident(&self, client: usize) -> bool {
        self.entries.contains_key(&client)
    }

    /// Read a client's state, if resident.
    pub fn get(&self, client: usize) -> Option<&ClientState> {
        self.entries.get(&client)
    }

    /// Remove and return a client's state (default for non-resident
    /// clients) so a training worker can own it — the sparse equivalent of
    /// `std::mem::take(&mut states[c])`.
    ///
    /// # Panics
    /// Panics when `client >= n_clients`.
    pub fn take(&mut self, client: usize) -> ClientState {
        assert!(
            client < self.n_clients,
            "client {client} out of range (n_clients {})",
            self.n_clients
        );
        self.entries.remove(&client).unwrap_or_default()
    }

    /// Return a client's state after training (the other half of
    /// [`ClientStateStore::take`]).
    ///
    /// # Panics
    /// Panics when `client >= n_clients`.
    pub fn put(&mut self, client: usize, state: ClientState) {
        assert!(
            client < self.n_clients,
            "client {client} out of range (n_clients {})",
            self.n_clients
        );
        self.entries.insert(client, state);
    }

    /// Resident entries in ascending client order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ClientState)> {
        self.entries.iter().map(|(&c, s)| (c, s))
    }

    /// Force every client resident (with default states where absent).
    ///
    /// Semantically a no-op — a vacant resident entry behaves exactly like
    /// absence — which is precisely what the sparse≡dense equivalence tests
    /// exercise. O(N) memory; never used by the engine itself.
    pub fn prefill_dense(&mut self) {
        for c in 0..self.n_clients {
            self.entries.entry(c).or_default();
        }
    }
}

/// What a client sends back to the server after local training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalOutcome {
    /// Updated local parameters `w_k^t`.
    pub params: Vec<f32>,
    /// Number of local samples (the aggregation weight `|D_k|`).
    pub n_samples: usize,
    /// Mean training loss over the round's iterations.
    pub mean_loss: f64,
    /// Local SGD iterations executed.
    pub iterations: usize,
    /// Total local computation this round (model FLOPs + attach FLOPs).
    pub train_flops: f64,
    /// Optional auxiliary upload (SCAFFOLD's control-variate delta,
    /// MimeLite's full-batch gradient).
    pub aux: Option<Vec<f32>>,
    /// How many global-model versions elapsed between this client's
    /// dispatch and its aggregation. Always `0` under the synchronous
    /// scheduler; set by the semi-async scheduler at fold time. Algorithms
    /// never need to touch it.
    pub staleness: usize,
    /// Staleness-discount multiplier applied to this outcome's aggregation
    /// weight (`1.0` = undiscounted, the synchronous default; the
    /// semi-async scheduler sets `1 / (1 + staleness)^a`).
    pub agg_weight: f64,
    /// Whether this client's broadcast this round was a **dense** full-model
    /// send (`true`: dense downlink, a resync round, or an on-demand base
    /// for a joiner) rather than a compressed delta. Algorithms always set
    /// `true`; the executor downgrades it to `false` for in-sync clients
    /// under a delta downlink. Drives downlink byte/time accounting only.
    pub dense_down: bool,
}

/// Scalar cohort summary available *before* any outcome folds — what a
/// streaming server fold needs to know up front.
///
/// The scheduler computes it with a cheap pass over the cohort's scalars
/// (never the parameter vectors): in sync mode the cohort is the round's
/// survivors, in semi-async mode the buffered arrivals, both known before
/// the first vector is folded.
#[derive(Debug, Clone, Copy)]
pub struct FoldPlan {
    /// Number of outcomes that will fold.
    pub cohort: usize,
    /// How many of them carry an auxiliary upload (MimeLite's gradient
    /// mean divides by this).
    pub aux_count: usize,
    /// `Σ n_samples · agg_weight` over the cohort **in fold order** — the
    /// normalizer of the weighted parameter average.
    pub total_weight: f64,
}

impl FoldPlan {
    /// Summarize a cohort (iterate in fold order — the f64 sum order is
    /// part of the bit-reproducibility contract).
    pub fn for_outcomes<'a>(outcomes: impl Iterator<Item = &'a LocalOutcome>) -> FoldPlan {
        let mut plan = FoldPlan {
            cohort: 0,
            aux_count: 0,
            total_weight: 0.0,
        };
        for o in outcomes {
            plan.cohort += 1;
            plan.aux_count += usize::from(o.aux.is_some());
            plan.total_weight += o.n_samples as f64 * o.agg_weight;
        }
        plan
    }
}

/// Streaming server-fold accumulator: arrivals fold into a running
/// normalized-weight parameter sum **one at a time**, so the server never
/// has to hold a cohort of full parameter vectors to aggregate them.
///
/// The accumulation replicates [`weighted_param_average`] operation for
/// operation — each arrival's normalized weight
/// `n_samples · agg_weight / total_weight` (with `total_weight` from the
/// [`FoldPlan`]'s scalar pre-pass) scales its parameters into an f64
/// accumulator in fold order — so a streamed fold is bit-identical to the
/// historical collect-then-average, which the golden fixtures pin.
///
/// `extra` is a method-owned f32 scratch vector: server-stateful methods
/// (FedDyn's drift, SCAFFOLD's control-variate sum, MimeLite's gradient
/// mean) size it in [`Algorithm::server_begin`] and stream into it in
/// [`Algorithm::server_fold`], preserving their historical per-element f32
/// accumulation order exactly.
#[derive(Debug)]
pub struct ServerFold {
    plan: FoldPlan,
    acc: Vec<f64>,
    /// Method-owned streaming scratch (empty unless the method's
    /// [`Algorithm::server_begin`] sizes it).
    pub extra: Vec<f32>,
}

impl ServerFold {
    /// Start a fold of `plan.cohort` outcomes over `n_params` parameters.
    ///
    /// # Panics
    /// Panics on an empty cohort or non-positive total weight (the same
    /// invariants [`weighted_param_average`] asserts).
    pub fn begin(n_params: usize, plan: FoldPlan) -> ServerFold {
        assert!(plan.cohort > 0, "no outcomes to aggregate");
        assert!(
            plan.total_weight > 0.0,
            "aggregation weights must be positive"
        );
        ServerFold {
            plan,
            acc: vec![0.0f64; n_params],
            extra: Vec::new(),
        }
    }

    /// The cohort summary this fold was begun with.
    pub fn plan(&self) -> FoldPlan {
        self.plan
    }

    /// Parameter-vector length of this fold.
    pub fn n_params(&self) -> usize {
        self.acc.len()
    }

    /// Fold one arrival: its parameters into the running weighted average,
    /// then the method's own streaming hook ([`Algorithm::server_fold`]).
    /// `global` is the fold-start global model (what corrections measure
    /// drift against).
    ///
    /// # Panics
    /// Panics on a parameter-length mismatch.
    pub fn absorb<A: Algorithm + ?Sized>(
        &mut self,
        algorithm: &A,
        outcome: &LocalOutcome,
        global: &[f32],
    ) {
        assert_eq!(
            outcome.params.len(),
            self.acc.len(),
            "parameter vector length mismatch"
        );
        let w = outcome.n_samples as f64 * outcome.agg_weight / self.plan.total_weight;
        for (a, &v) in self.acc.iter_mut().zip(&outcome.params) {
            *a += w * v as f64;
        }
        algorithm.server_fold(self, outcome, global);
    }

    /// Merge another fold of the **same global model** into this one — the
    /// associative combine of the hierarchical (edge → root) aggregation
    /// tree.
    ///
    /// A partial fold is a *locally normalized* weighted sum: each of its
    /// arrivals was scaled by `w_i / W_partial` where `W_partial` is that
    /// fold's own plan weight. Two partial folds with weights `W_a`, `W_b`
    /// therefore recombine exactly as
    ///
    /// ```text
    /// acc = (W_a / (W_a + W_b)) · acc_a  +  (W_b / (W_a + W_b)) · acc_b
    /// ```
    ///
    /// after which the merged fold is again a locally normalized sum over
    /// the union cohort with weight `W_a + W_b` — the fold forms a
    /// commutative monoid up to float rounding. The method's own scratch
    /// combines first, via [`Algorithm::server_merge`], while both plans
    /// still describe their partial cohorts (MimeLite's recombination needs
    /// the per-side `aux_count`s).
    ///
    /// A degenerate tree of one fold performs **no** merge, which is what
    /// pins `E = 1` hierarchical runs bit-identical to the flat streaming
    /// fold. Merged multi-edge folds agree with the flat fold up to f64
    /// summation order (see `DESIGN.md` §Hierarchical aggregation).
    ///
    /// # Panics
    /// Panics on a parameter-length mismatch.
    pub fn merge<A: Algorithm + ?Sized>(&mut self, algorithm: &A, other: ServerFold) {
        assert_eq!(
            self.acc.len(),
            other.acc.len(),
            "cannot merge folds over different parameter counts"
        );
        algorithm.server_merge(self, &other);
        let (wa, wb) = (self.plan.total_weight, other.plan.total_weight);
        let total = wa + wb;
        let (fa, fb) = (wa / total, wb / total);
        for (a, &b) in self.acc.iter_mut().zip(&other.acc) {
            *a = fa * *a + fb * b;
        }
        self.plan.cohort += other.plan.cohort;
        self.plan.aux_count += other.plan.aux_count;
        self.plan.total_weight = total;
    }

    /// Finish the fold: the weighted parameter average (f64 accumulator
    /// cast back to f32).
    pub fn into_avg(self) -> Vec<f32> {
        self.acc.into_iter().map(|v| v as f32).collect()
    }

    /// Finish the fold keeping the method scratch: `(average, extra)`.
    pub fn into_parts(self) -> (Vec<f32>, Vec<f32>) {
        let extra = self.extra;
        (self.acc.into_iter().map(|v| v as f32).collect(), extra)
    }
}

/// A federated optimization method.
pub trait Algorithm: Send + Sync {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Called once before the first round with the federation size and the
    /// model's parameter count, so server-side state (SCAFFOLD's control
    /// variate, FedDyn's `h`, SlowMo's momentum) can be sized.
    fn on_init(&mut self, _n_clients: usize, _n_params: usize) {}

    /// Export server-side state vectors for checkpointing (SlowMo's
    /// momentum buffer, FedDyn's `h`, SCAFFOLD's `c`, MimeLite's `s`).
    /// Stateless methods return an empty list.
    fn server_state(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Restore state previously exported by [`Algorithm::server_state`].
    /// Called after `on_init` when resuming from a checkpoint.
    fn restore_server_state(&mut self, _state: Vec<Vec<f32>>) {}

    /// Build the local optimizer. Default: SGD with momentum, the paper's
    /// standard choice; SlowMo/FedDyn/SCAFFOLD/MimeLite override to plain
    /// SGD per §V-A.
    fn make_optimizer(&self, lr: f32, momentum: f32) -> Box<dyn Optimizer> {
        Box::new(SgdMomentum::new(lr, momentum))
    }

    /// Run one round of local training. `net` arrives loaded with the
    /// global parameters. Called concurrently for different clients.
    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome;

    /// Called when a server fold begins, before any outcome arrives — size
    /// the streaming scratch (`fold.extra`) here. Default: nothing.
    fn server_begin(&self, _fold: &mut ServerFold) {}

    /// Streaming hook: called once per folded arrival (in fold order) from
    /// [`ServerFold::absorb`], after the arrival's parameters entered the
    /// running average. Methods with server-side corrections accumulate
    /// their per-outcome terms into `fold.extra` here; the arrival's
    /// parameter vector is dropped right after this call. Default: nothing.
    fn server_fold(&self, _fold: &mut ServerFold, _outcome: &LocalOutcome, _global: &[f32]) {}

    /// Combine hook for hierarchical aggregation: fold `other`'s method
    /// scratch (`extra`) into `fold`'s, called from [`ServerFold::merge`]
    /// **before** the base accumulators and plans combine — both plans
    /// still describe their partial cohorts, which is what a count-weighted
    /// recombination (MimeLite) needs.
    ///
    /// Methods whose `server_begin` seeds `extra` with existing server
    /// state must take care not to double-count the seed (SCAFFOLD subtracts
    /// one copy of its control variate per merge). Methods without fold
    /// scratch keep the default no-op.
    fn server_merge(&self, _fold: &mut ServerFold, _other: &ServerFold) {}

    /// Finish a fold: turn the accumulated average (and scratch) into the
    /// next global model, updating any server-side state. The default is
    /// the sample-count-weighted average of Eq. 2.
    fn server_finish(&mut self, global: &mut Vec<f32>, fold: ServerFold, _round: usize) {
        *global = fold.into_avg();
    }

    /// The Appendix-A attaching-operation cost of this method.
    fn attach_cost(&self, m: &CostModel) -> AttachCost;
}

/// Fold a full cohort at once by driving an algorithm's streaming hooks —
/// [`Algorithm::server_begin`] / [`Algorithm::server_fold`] /
/// [`Algorithm::server_finish`] — over a slice (unit tests, simple
/// embeddings). The engine itself streams arrivals through a
/// [`ServerFold`] instead of collecting them.
///
/// Deliberately a **free function**, not a trait method: the engine only
/// ever calls the three streaming hooks, so an overridable `server_update`
/// would be a silent no-op under the engine — methods must implement their
/// server step through the hooks.
pub fn server_update<A: Algorithm + ?Sized>(
    algorithm: &mut A,
    global: &mut Vec<f32>,
    outcomes: &[LocalOutcome],
    round: usize,
) {
    let plan = FoldPlan::for_outcomes(outcomes.iter());
    let mut fold = ServerFold::begin(global.len(), plan);
    algorithm.server_begin(&mut fold);
    for o in outcomes {
        fold.absorb(&*algorithm, o, global);
    }
    algorithm.server_finish(global, fold, round);
}

/// Sample-count-weighted parameter average (Eq. 2 with `a_k = |D_k| / |D_S|`),
/// modulated by each outcome's staleness discount `agg_weight` and
/// renormalized, so the effective weights always sum to exactly 1
/// (sum-preserving aggregation). With every `agg_weight == 1.0` — the
/// synchronous default — this is bit-identical to the undiscounted Eq. 2
/// average.
pub fn weighted_param_average(outcomes: &[LocalOutcome]) -> Vec<f32> {
    assert!(!outcomes.is_empty(), "no outcomes to aggregate");
    let total: f64 = outcomes
        .iter()
        .map(|o| o.n_samples as f64 * o.agg_weight)
        .sum();
    assert!(total > 0.0, "aggregation weights must be positive");
    let inputs: Vec<&[f32]> = outcomes.iter().map(|o| o.params.as_slice()).collect();
    let weights: Vec<f64> = outcomes
        .iter()
        .map(|o| o.n_samples as f64 * o.agg_weight / total)
        .collect();
    vecops::weighted_average(&inputs, &weights)
}

/// The shared local-SGD loop: `epochs` passes over the client's shuffled
/// data, one optimizer step per mini-batch. The algorithm's gradient
/// adjustment (FedProx / FedTrip / FedDyn / SCAFFOLD / MimeLite attach
/// here) is fused into the optimizer update via
/// [`Optimizer::step_adjusted`] — no flatten/scatter round-trip, no
/// allocation, and the raw gradient buffers stay untouched.
///
/// The mini-batch tensor and label vector are reused across every batch
/// and epoch, so steady-state iterations only allocate in the per-epoch
/// shuffle ([`BatchIter::new`] clones the sample refs).
///
/// Returns `(iterations, samples_processed, mean_loss)`.
pub fn run_local_sgd(
    net: &mut Sequential,
    data: &ClientData<'_>,
    ctx: &LocalContext<'_>,
    opt: &mut dyn Optimizer,
    adjust: &GradAdjust<'_>,
) -> (usize, usize, f64) {
    let mut iterations = 0usize;
    let mut samples = 0usize;
    let mut loss_sum = 0.0f64;
    let mut x = Tensor::zeros(&[1]);
    let mut y: Vec<usize> = Vec::new();
    for epoch in 0..ctx.epochs {
        let mut rng = ctx.epoch_rng(epoch);
        let mut batches = BatchIter::new(data.dataset, data.refs, ctx.batch_size, &mut rng);
        while batches.next_into(&mut x, &mut y) {
            net.zero_grads();
            let loss = net.train_step(&x, &y);
            opt.step_adjusted(net, adjust);
            iterations += 1;
            samples += y.len();
            loss_sum += loss;
        }
    }
    let mean_loss = if iterations > 0 {
        loss_sum / iterations as f64
    } else {
        0.0
    };
    (iterations, samples, mean_loss)
}

/// Baseline model FLOPs for a local round that processed `samples` samples.
pub fn model_train_flops(net: &Sequential, samples: usize) -> f64 {
    samples as f64 * (net.flops_forward() + net.flops_backward()) as f64
}

/// The methods of the paper's evaluation, as a closed enum for experiment
/// configs and CLI parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// FedAvg (McMahan et al., 2017) — the FL baseline.
    FedAvg,
    /// FedProx (Li et al., 2020) — proximal regularization.
    FedProx,
    /// FedTrip (this paper) — triplet regularization.
    FedTrip,
    /// MOON (Li et al., 2021) — model-contrastive representation learning.
    Moon,
    /// FedDyn (Acar et al., 2021) — dynamic regularization.
    FedDyn,
    /// SlowMo (Wang et al., 2019) — server-side slow momentum.
    SlowMo,
    /// SCAFFOLD (Karimireddy et al., 2020) — control variates (Appendix A).
    Scaffold,
    /// MimeLite (Karimireddy et al., 2020) — server statistics (Appendix A).
    MimeLite,
}

impl AlgorithmKind {
    /// The six methods of the paper's main evaluation (Tables IV-VII).
    pub const EVALUATED: [AlgorithmKind; 6] = [
        AlgorithmKind::FedTrip,
        AlgorithmKind::FedAvg,
        AlgorithmKind::FedProx,
        AlgorithmKind::SlowMo,
        AlgorithmKind::Moon,
        AlgorithmKind::FedDyn,
    ];

    /// All eight implemented methods (adds the Appendix-A comparators).
    pub const ALL: [AlgorithmKind; 8] = [
        AlgorithmKind::FedTrip,
        AlgorithmKind::FedAvg,
        AlgorithmKind::FedProx,
        AlgorithmKind::SlowMo,
        AlgorithmKind::Moon,
        AlgorithmKind::FedDyn,
        AlgorithmKind::Scaffold,
        AlgorithmKind::MimeLite,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::FedAvg => "FedAvg",
            AlgorithmKind::FedProx => "FedProx",
            AlgorithmKind::FedTrip => "FedTrip",
            AlgorithmKind::Moon => "MOON",
            AlgorithmKind::FedDyn => "FedDyn",
            AlgorithmKind::SlowMo => "SlowMo",
            AlgorithmKind::Scaffold => "SCAFFOLD",
            AlgorithmKind::MimeLite => "MimeLite",
        }
    }

    /// Parse a (case-insensitive) method name.
    pub fn parse(s: &str) -> Option<AlgorithmKind> {
        let l = s.to_ascii_lowercase();
        Some(match l.as_str() {
            "fedavg" => AlgorithmKind::FedAvg,
            "fedprox" => AlgorithmKind::FedProx,
            "fedtrip" => AlgorithmKind::FedTrip,
            "moon" => AlgorithmKind::Moon,
            "feddyn" => AlgorithmKind::FedDyn,
            "slowmo" => AlgorithmKind::SlowMo,
            "scaffold" => AlgorithmKind::Scaffold,
            "mimelite" => AlgorithmKind::MimeLite,
            _ => return None,
        })
    }

    /// Instantiate the method with the given hyper-parameters.
    pub fn build(&self, hp: &HyperParams) -> Box<dyn Algorithm> {
        match self {
            AlgorithmKind::FedAvg => Box::new(FedAvg::new()),
            AlgorithmKind::FedProx => Box::new(FedProx::new(hp.fedprox_mu)),
            AlgorithmKind::FedTrip => Box::new(FedTrip::new(FedTripConfig {
                mu: hp.fedtrip_mu,
                xi_mode: hp.xi_mode,
            })),
            AlgorithmKind::Moon => Box::new(Moon::new(hp.moon_mu, hp.moon_tau)),
            AlgorithmKind::FedDyn => Box::new(FedDyn::new(hp.feddyn_alpha)),
            AlgorithmKind::SlowMo => Box::new(SlowMo::new(hp.slowmo_beta, hp.slowmo_lr)),
            AlgorithmKind::Scaffold => Box::new(Scaffold::new()),
            AlgorithmKind::MimeLite => Box::new(MimeLite::new(hp.mime_beta)),
        }
    }
}

/// Hyper-parameters for all methods, with the defaults of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// FedTrip `mu` (paper: 1.0 for MLP experiments, 0.4 otherwise).
    pub fedtrip_mu: f32,
    /// FedTrip `xi` mode (paper: the participation gap).
    pub xi_mode: XiMode,
    /// FedProx `mu` (paper: 0.1).
    pub fedprox_mu: f32,
    /// MOON `mu` (paper: 1.0).
    pub moon_mu: f32,
    /// MOON temperature `tau` (paper: 0.5).
    pub moon_tau: f32,
    /// FedDyn `alpha` (paper: 1.0 on MNIST, 0.1 elsewhere).
    pub feddyn_alpha: f32,
    /// SlowMo momentum `beta`.
    pub slowmo_beta: f32,
    /// SlowMo server learning rate.
    pub slowmo_lr: f32,
    /// MimeLite server-statistics momentum.
    pub mime_beta: f32,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            fedtrip_mu: 0.4,
            xi_mode: XiMode::Gap,
            fedprox_mu: 0.1,
            moon_mu: 1.0,
            moon_tau: 0.5,
            feddyn_alpha: 0.1,
            slowmo_beta: 0.5,
            slowmo_lr: 1.0,
            mime_beta: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for k in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(k.name()), Some(k));
            assert_eq!(AlgorithmKind::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(AlgorithmKind::parse("nope"), None);
    }

    fn outcome_with_weight(params: Vec<f32>, n: usize, agg_weight: f64) -> LocalOutcome {
        LocalOutcome {
            params,
            n_samples: n,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: None,
            staleness: 0,
            agg_weight,
            dense_down: true,
        }
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        let avg = weighted_param_average(&[
            outcome_with_weight(vec![0.0, 0.0], 100, 1.0),
            outcome_with_weight(vec![4.0, 8.0], 300, 1.0),
        ]);
        assert_eq!(avg, vec![3.0, 6.0]);
    }

    #[test]
    fn weighted_average_applies_staleness_discount() {
        // discounting the second outcome to 1/3 makes the two contributions
        // equal: 100 * 1.0 == 300 * (1/3)
        let avg = weighted_param_average(&[
            outcome_with_weight(vec![0.0, 0.0], 100, 1.0),
            outcome_with_weight(vec![4.0, 8.0], 300, 1.0 / 3.0),
        ]);
        for (got, want) in avg.iter().zip([2.0f32, 4.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn every_kind_builds() {
        let hp = HyperParams::default();
        for k in AlgorithmKind::ALL {
            let alg = k.build(&hp);
            assert_eq!(alg.name(), k.name());
        }
    }

    #[test]
    fn defaults_match_paper_section_5a() {
        let hp = HyperParams::default();
        assert_eq!(hp.fedprox_mu, 0.1);
        assert_eq!(hp.moon_mu, 1.0);
        assert_eq!(hp.moon_tau, 0.5);
        assert_eq!(hp.fedtrip_mu, 0.4);
    }
}
