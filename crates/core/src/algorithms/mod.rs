//! Federated optimization algorithms.
//!
//! The paper's contribution ([`FedTrip`]) plus every baseline of its
//! evaluation: [`FedAvg`], [`FedProx`], [`Moon`], [`FedDyn`], [`SlowMo`],
//! and the Appendix-A comparators [`Scaffold`] and [`MimeLite`].
//!
//! All methods implement the [`Algorithm`] trait: the engine hands each
//! selected client a model loaded with the global parameters and the method
//! runs local training however it likes (`local_train`, called from rayon
//! workers, hence `&self`), then the server folds the outcomes into the next
//! global model (`server_update`, `&mut self` — server-side state like
//! SlowMo's momentum buffer lives in the algorithm struct).

mod fedavg;
mod feddyn;
mod fedprox;
mod fedtrip;
mod mimelite;
mod moon;
mod scaffold;
mod slowmo;
#[cfg(test)]
pub(crate) mod testutil;

pub use fedavg::FedAvg;
pub use feddyn::FedDyn;
pub use fedprox::FedProx;
pub use fedtrip::{FedTrip, FedTripConfig, XiMode};
pub use mimelite::MimeLite;
pub use moon::Moon;
pub use scaffold::Scaffold;
pub use slowmo::SlowMo;

use crate::costs::{AttachCost, CostModel};
use fedtrip_data::loader::BatchIter;
use fedtrip_data::synth::{SampleRef, SyntheticVision};
use fedtrip_tensor::optim::{Optimizer, SgdMomentum};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::vecops;
use fedtrip_tensor::Sequential;
use serde::{Deserialize, Serialize};

/// A client's local shard: the dataset generator plus its sample references.
pub struct ClientData<'a> {
    /// The (shared, read-only) procedural dataset.
    pub dataset: &'a SyntheticVision,
    /// Samples owned by this client.
    pub refs: &'a [SampleRef],
}

/// Per-round, per-client context assembled by the engine.
#[derive(Debug, Clone)]
pub struct LocalContext<'a> {
    /// Communication round (1-based).
    pub round: usize,
    /// Client index within the federation.
    pub client_id: usize,
    /// Global model parameters at round start (`w^{t-1}`).
    pub global: &'a [f32],
    /// Rounds since this client last participated (the paper's `xi`);
    /// `None` on first participation.
    pub gap: Option<usize>,
    /// Local epochs per round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Client learning rate.
    pub lr: f32,
    /// Momentum coefficient (methods that use SGDm).
    pub momentum: f32,
    /// Base seed for deriving data-shuffling streams.
    pub seed: u64,
}

impl LocalContext<'_> {
    /// Derive the shuffling RNG for a given epoch, deterministic in
    /// `(seed, round, client, epoch)` regardless of thread scheduling.
    pub fn epoch_rng(&self, epoch: usize) -> Prng {
        Prng::derive(
            self.seed,
            &[0xE0, self.round as u64, self.client_id as u64, epoch as u64],
        )
    }
}

/// Persistent per-client state across rounds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClientState {
    /// Round of last participation.
    pub last_round: Option<usize>,
    /// Historical local model `w̃_k` (FedTrip's negative anchor, MOON's
    /// previous representation model).
    pub historical: Option<Vec<f32>>,
    /// Per-client correction state (FedDyn `h_k`, SCAFFOLD `c_k`).
    pub correction: Option<Vec<f32>>,
    /// Error-feedback residual: the part of this client's last
    /// (compensated) upload the compression codec dropped, retransmitted
    /// on the next participation. `None` until the client first uploads
    /// under a lossy codec with error feedback enabled.
    pub residual: Option<Vec<f32>>,
}

/// What a client sends back to the server after local training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalOutcome {
    /// Updated local parameters `w_k^t`.
    pub params: Vec<f32>,
    /// Number of local samples (the aggregation weight `|D_k|`).
    pub n_samples: usize,
    /// Mean training loss over the round's iterations.
    pub mean_loss: f64,
    /// Local SGD iterations executed.
    pub iterations: usize,
    /// Total local computation this round (model FLOPs + attach FLOPs).
    pub train_flops: f64,
    /// Optional auxiliary upload (SCAFFOLD's control-variate delta,
    /// MimeLite's full-batch gradient).
    pub aux: Option<Vec<f32>>,
    /// How many global-model versions elapsed between this client's
    /// dispatch and its aggregation. Always `0` under the synchronous
    /// scheduler; set by the semi-async scheduler at fold time. Algorithms
    /// never need to touch it.
    pub staleness: usize,
    /// Staleness-discount multiplier applied to this outcome's aggregation
    /// weight (`1.0` = undiscounted, the synchronous default; the
    /// semi-async scheduler sets `1 / (1 + staleness)^a`).
    pub agg_weight: f64,
}

/// A federated optimization method.
pub trait Algorithm: Send + Sync {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Called once before the first round with the federation size and the
    /// model's parameter count, so server-side state (SCAFFOLD's control
    /// variate, FedDyn's `h`, SlowMo's momentum) can be sized.
    fn on_init(&mut self, _n_clients: usize, _n_params: usize) {}

    /// Export server-side state vectors for checkpointing (SlowMo's
    /// momentum buffer, FedDyn's `h`, SCAFFOLD's `c`, MimeLite's `s`).
    /// Stateless methods return an empty list.
    fn server_state(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Restore state previously exported by [`Algorithm::server_state`].
    /// Called after `on_init` when resuming from a checkpoint.
    fn restore_server_state(&mut self, _state: Vec<Vec<f32>>) {}

    /// Build the local optimizer. Default: SGD with momentum, the paper's
    /// standard choice; SlowMo/FedDyn/SCAFFOLD/MimeLite override to plain
    /// SGD per §V-A.
    fn make_optimizer(&self, lr: f32, momentum: f32) -> Box<dyn Optimizer> {
        Box::new(SgdMomentum::new(lr, momentum))
    }

    /// Run one round of local training. `net` arrives loaded with the
    /// global parameters. Called concurrently for different clients.
    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome;

    /// Fold client outcomes into the next global model. The default is the
    /// sample-count-weighted average of Eq. 2.
    fn server_update(&mut self, global: &mut Vec<f32>, outcomes: &[LocalOutcome], _round: usize) {
        *global = weighted_param_average(outcomes);
    }

    /// The Appendix-A attaching-operation cost of this method.
    fn attach_cost(&self, m: &CostModel) -> AttachCost;
}

/// Sample-count-weighted parameter average (Eq. 2 with `a_k = |D_k| / |D_S|`),
/// modulated by each outcome's staleness discount `agg_weight` and
/// renormalized, so the effective weights always sum to exactly 1
/// (sum-preserving aggregation). With every `agg_weight == 1.0` — the
/// synchronous default — this is bit-identical to the undiscounted Eq. 2
/// average.
pub fn weighted_param_average(outcomes: &[LocalOutcome]) -> Vec<f32> {
    assert!(!outcomes.is_empty(), "no outcomes to aggregate");
    let total: f64 = outcomes
        .iter()
        .map(|o| o.n_samples as f64 * o.agg_weight)
        .sum();
    assert!(total > 0.0, "aggregation weights must be positive");
    let inputs: Vec<&[f32]> = outcomes.iter().map(|o| o.params.as_slice()).collect();
    let weights: Vec<f64> = outcomes
        .iter()
        .map(|o| o.n_samples as f64 * o.agg_weight / total)
        .collect();
    vecops::weighted_average(&inputs, &weights)
}

/// Flat-space gradient-adjustment hook `(grads, current_params)` applied
/// between backward and optimizer step — where the attaching operations of
/// FedProx / FedTrip / FedDyn / SCAFFOLD plug into [`run_local_sgd`].
pub type GradHook<'h> = &'h mut dyn FnMut(&mut Vec<f32>, &[f32]);

/// The shared local-SGD loop: `epochs` passes over the client's shuffled
/// data, one optimizer step per mini-batch, with an optional flat-space
/// gradient hook `(grads, current_params)` applied between backward and
/// step (this is where FedProx / FedTrip / FedDyn / SCAFFOLD attach).
///
/// Returns `(iterations, samples_processed, mean_loss)`.
pub fn run_local_sgd(
    net: &mut Sequential,
    data: &ClientData<'_>,
    ctx: &LocalContext<'_>,
    opt: &mut dyn Optimizer,
    mut grad_hook: Option<GradHook<'_>>,
) -> (usize, usize, f64) {
    let mut iterations = 0usize;
    let mut samples = 0usize;
    let mut loss_sum = 0.0f64;
    for epoch in 0..ctx.epochs {
        let mut rng = ctx.epoch_rng(epoch);
        for (x, y) in BatchIter::new(data.dataset, data.refs, ctx.batch_size, &mut rng) {
            net.zero_grads();
            let loss = net.train_step(&x, &y);
            if let Some(hook) = grad_hook.as_mut() {
                let w = net.params_flat();
                let mut g = net.grads_flat();
                hook(&mut g, &w);
                net.set_grads_flat(&g);
            }
            opt.step(net);
            iterations += 1;
            samples += y.len();
            loss_sum += loss;
        }
    }
    let mean_loss = if iterations > 0 {
        loss_sum / iterations as f64
    } else {
        0.0
    };
    (iterations, samples, mean_loss)
}

/// Baseline model FLOPs for a local round that processed `samples` samples.
pub fn model_train_flops(net: &Sequential, samples: usize) -> f64 {
    samples as f64 * (net.flops_forward() + net.flops_backward()) as f64
}

/// The methods of the paper's evaluation, as a closed enum for experiment
/// configs and CLI parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// FedAvg (McMahan et al., 2017) — the FL baseline.
    FedAvg,
    /// FedProx (Li et al., 2020) — proximal regularization.
    FedProx,
    /// FedTrip (this paper) — triplet regularization.
    FedTrip,
    /// MOON (Li et al., 2021) — model-contrastive representation learning.
    Moon,
    /// FedDyn (Acar et al., 2021) — dynamic regularization.
    FedDyn,
    /// SlowMo (Wang et al., 2019) — server-side slow momentum.
    SlowMo,
    /// SCAFFOLD (Karimireddy et al., 2020) — control variates (Appendix A).
    Scaffold,
    /// MimeLite (Karimireddy et al., 2020) — server statistics (Appendix A).
    MimeLite,
}

impl AlgorithmKind {
    /// The six methods of the paper's main evaluation (Tables IV-VII).
    pub const EVALUATED: [AlgorithmKind; 6] = [
        AlgorithmKind::FedTrip,
        AlgorithmKind::FedAvg,
        AlgorithmKind::FedProx,
        AlgorithmKind::SlowMo,
        AlgorithmKind::Moon,
        AlgorithmKind::FedDyn,
    ];

    /// All eight implemented methods (adds the Appendix-A comparators).
    pub const ALL: [AlgorithmKind; 8] = [
        AlgorithmKind::FedTrip,
        AlgorithmKind::FedAvg,
        AlgorithmKind::FedProx,
        AlgorithmKind::SlowMo,
        AlgorithmKind::Moon,
        AlgorithmKind::FedDyn,
        AlgorithmKind::Scaffold,
        AlgorithmKind::MimeLite,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::FedAvg => "FedAvg",
            AlgorithmKind::FedProx => "FedProx",
            AlgorithmKind::FedTrip => "FedTrip",
            AlgorithmKind::Moon => "MOON",
            AlgorithmKind::FedDyn => "FedDyn",
            AlgorithmKind::SlowMo => "SlowMo",
            AlgorithmKind::Scaffold => "SCAFFOLD",
            AlgorithmKind::MimeLite => "MimeLite",
        }
    }

    /// Parse a (case-insensitive) method name.
    pub fn parse(s: &str) -> Option<AlgorithmKind> {
        let l = s.to_ascii_lowercase();
        Some(match l.as_str() {
            "fedavg" => AlgorithmKind::FedAvg,
            "fedprox" => AlgorithmKind::FedProx,
            "fedtrip" => AlgorithmKind::FedTrip,
            "moon" => AlgorithmKind::Moon,
            "feddyn" => AlgorithmKind::FedDyn,
            "slowmo" => AlgorithmKind::SlowMo,
            "scaffold" => AlgorithmKind::Scaffold,
            "mimelite" => AlgorithmKind::MimeLite,
            _ => return None,
        })
    }

    /// Instantiate the method with the given hyper-parameters.
    pub fn build(&self, hp: &HyperParams) -> Box<dyn Algorithm> {
        match self {
            AlgorithmKind::FedAvg => Box::new(FedAvg::new()),
            AlgorithmKind::FedProx => Box::new(FedProx::new(hp.fedprox_mu)),
            AlgorithmKind::FedTrip => Box::new(FedTrip::new(FedTripConfig {
                mu: hp.fedtrip_mu,
                xi_mode: hp.xi_mode,
            })),
            AlgorithmKind::Moon => Box::new(Moon::new(hp.moon_mu, hp.moon_tau)),
            AlgorithmKind::FedDyn => Box::new(FedDyn::new(hp.feddyn_alpha)),
            AlgorithmKind::SlowMo => Box::new(SlowMo::new(hp.slowmo_beta, hp.slowmo_lr)),
            AlgorithmKind::Scaffold => Box::new(Scaffold::new()),
            AlgorithmKind::MimeLite => Box::new(MimeLite::new(hp.mime_beta)),
        }
    }
}

/// Hyper-parameters for all methods, with the defaults of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// FedTrip `mu` (paper: 1.0 for MLP experiments, 0.4 otherwise).
    pub fedtrip_mu: f32,
    /// FedTrip `xi` mode (paper: the participation gap).
    pub xi_mode: XiMode,
    /// FedProx `mu` (paper: 0.1).
    pub fedprox_mu: f32,
    /// MOON `mu` (paper: 1.0).
    pub moon_mu: f32,
    /// MOON temperature `tau` (paper: 0.5).
    pub moon_tau: f32,
    /// FedDyn `alpha` (paper: 1.0 on MNIST, 0.1 elsewhere).
    pub feddyn_alpha: f32,
    /// SlowMo momentum `beta`.
    pub slowmo_beta: f32,
    /// SlowMo server learning rate.
    pub slowmo_lr: f32,
    /// MimeLite server-statistics momentum.
    pub mime_beta: f32,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            fedtrip_mu: 0.4,
            xi_mode: XiMode::Gap,
            fedprox_mu: 0.1,
            moon_mu: 1.0,
            moon_tau: 0.5,
            feddyn_alpha: 0.1,
            slowmo_beta: 0.5,
            slowmo_lr: 1.0,
            mime_beta: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for k in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(k.name()), Some(k));
            assert_eq!(AlgorithmKind::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(AlgorithmKind::parse("nope"), None);
    }

    fn outcome_with_weight(params: Vec<f32>, n: usize, agg_weight: f64) -> LocalOutcome {
        LocalOutcome {
            params,
            n_samples: n,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: None,
            staleness: 0,
            agg_weight,
        }
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        let avg = weighted_param_average(&[
            outcome_with_weight(vec![0.0, 0.0], 100, 1.0),
            outcome_with_weight(vec![4.0, 8.0], 300, 1.0),
        ]);
        assert_eq!(avg, vec![3.0, 6.0]);
    }

    #[test]
    fn weighted_average_applies_staleness_discount() {
        // discounting the second outcome to 1/3 makes the two contributions
        // equal: 100 * 1.0 == 300 * (1/3)
        let avg = weighted_param_average(&[
            outcome_with_weight(vec![0.0, 0.0], 100, 1.0),
            outcome_with_weight(vec![4.0, 8.0], 300, 1.0 / 3.0),
        ]);
        for (got, want) in avg.iter().zip([2.0f32, 4.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn every_kind_builds() {
        let hp = HyperParams::default();
        for k in AlgorithmKind::ALL {
            let alg = k.build(&hp);
            assert_eq!(alg.name(), k.name());
        }
    }

    #[test]
    fn defaults_match_paper_section_5a() {
        let hp = HyperParams::default();
        assert_eq!(hp.fedprox_mu, 0.1);
        assert_eq!(hp.moon_mu, 1.0);
        assert_eq!(hp.moon_tau, 0.5);
        assert_eq!(hp.fedtrip_mu, 0.4);
    }
}
