//! SCAFFOLD (Karimireddy et al., 2020) — stochastic controlled averaging.
//!
//! Client drift is corrected with control variates: the server keeps `c`,
//! each client keeps `c_k`, and every local step uses `g - c_k + c`.
//! After `K` steps the client refreshes its control variate with the
//! "option II" rule `c_k+ = c_k - c + (w_global - w_k) / (K * lr)` and
//! uploads the delta, costing `2|w|` extra communication per round — the
//! Appendix-A row FedTrip is contrasted against on the communication side.

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome, ServerFold,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::optim::{Optimizer, Sgd};
use fedtrip_tensor::{GradAdjust, Sequential};

/// The SCAFFOLD method.
#[derive(Debug, Clone, Default)]
pub struct Scaffold {
    /// Server control variate `c`.
    c: Vec<f32>,
    /// Federation size `N`.
    n_clients: usize,
}

impl Scaffold {
    /// Create SCAFFOLD.
    pub fn new() -> Self {
        Scaffold::default()
    }

    /// Read-only view of the server control variate (for tests/diagnostics).
    pub fn server_control(&self) -> &[f32] {
        &self.c
    }
}

impl Algorithm for Scaffold {
    fn name(&self) -> &'static str {
        "SCAFFOLD"
    }

    fn on_init(&mut self, n_clients: usize, n_params: usize) {
        self.n_clients = n_clients;
        self.c = vec![0.0; n_params];
    }

    fn make_optimizer(&self, lr: f32, _momentum: f32) -> Box<dyn Optimizer> {
        // control variates assume plain SGD steps
        Box::new(Sgd::new(lr))
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let n = net.num_params();
        if state
            .correction
            .as_ref()
            .map(|c| c.len() != n)
            .unwrap_or(true)
        {
            state.correction = Some(vec![0.0; n]);
        }
        // zeros fallback only materializes on a size change
        let zeros;
        let c_server: &[f32] = if self.c.len() == n {
            &self.c
        } else {
            zeros = vec![0.0f32; n];
            &zeros
        };
        // the client variate is borrowed, not cloned: the fused sweep only
        // reads it, and the option-II refresh below runs in place
        let adjust = GradAdjust::ControlVariates {
            c_server,
            c_client: state.correction.as_deref().expect("initialized above"), // lint:allow(panic) — correction seeded earlier in this call
        };
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);

        let params = net.params_flat();
        // option II refresh: c_k+ = c_k - c + (w_global - w_k) / (K * lr)
        let scale = 1.0 / (iterations.max(1) as f32 * ctx.lr);
        let mut delta_c = vec![0.0f32; n];
        {
            let ck = state.correction.as_mut().expect("initialized above"); // lint:allow(panic) — correction seeded earlier in this call
            for i in 0..n {
                let fresh = ck[i] - c_server[i] + (ctx.global[i] - params[i]) * scale;
                delta_c[i] = fresh - ck[i];
                ck[i] = fresh;
            }
        }
        state.last_round = Some(ctx.round);

        LocalOutcome {
            params,
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            // the 2(K+1)|w| control arithmetic; the n(FP+BP) term of the
            // Appendix-A formula models SCAFFOLD variants that estimate
            // full-batch gradients — our option-II variant does not run it,
            // so count only what is executed:
            train_flops: model_train_flops(net, samples) + 2.0 * (iterations + 1) as f64 * n as f64,
            aux: Some(delta_c),
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn server_begin(&self, fold: &mut ServerFold) {
        // streaming scratch: the *next* server control variate, starting
        // from the current `c` (zeros on a size change, as before)
        fold.extra = if self.c.len() == fold.n_params() {
            self.c.clone()
        } else {
            vec![0.0f32; fold.n_params()]
        };
    }

    fn server_fold(&self, fold: &mut ServerFold, outcome: &LocalOutcome, _global: &[f32]) {
        // c <- c + (1/N) * delta_c_k, one arrival at a time
        if let Some(dc) = &outcome.aux {
            let n = self.n_clients.max(fold.plan().cohort) as f32;
            for (cv, &d) in fold.extra.iter_mut().zip(dc) {
                *cv += d / n;
            }
        }
    }

    fn server_merge(&self, fold: &mut ServerFold, other: &ServerFold) {
        // every partial fold's `server_begin` seeded its scratch with one
        // copy of the current `c`, so the union is the element sum minus the
        // duplicated base: (c + Σ_A d/N) + (c + Σ_B d/N) - c. Mirror the
        // zeros-on-size-change guard of `server_begin`.
        let seeded = self.c.len() == fold.n_params();
        for (i, (cv, &ov)) in fold.extra.iter_mut().zip(&other.extra).enumerate() {
            let base = if seeded { self.c[i] } else { 0.0 };
            *cv += ov - base;
        }
    }

    fn server_finish(&mut self, global: &mut Vec<f32>, fold: ServerFold, _round: usize) {
        let (avg, c) = fold.into_parts();
        *global = avg;
        self.c = c;
    }

    fn server_state(&self) -> Vec<Vec<f32>> {
        vec![self.c.clone()]
    }

    fn restore_server_state(&mut self, mut state: Vec<Vec<f32>>) {
        if let Some(c) = state.pop() {
            self.c = c;
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::scaffold(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::server_update;
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn uploads_control_delta() {
        let h = Harness::new(51);
        let (o, s) = h.train_one_client(&Scaffold::new(), 1, None);
        let dc = o.aux.expect("scaffold uploads delta c");
        assert_eq!(dc.len(), o.params.len());
        assert!(dc.iter().any(|&v| v != 0.0));
        // client state must equal old c_k + delta (old was zero)
        let ck = s.correction.unwrap();
        for (a, b) in ck.iter().zip(&dc) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn control_variate_refresh_matches_option_two() {
        // c = 0, c_k = 0: c_k+ = (global - w)/ (K lr)
        let h = Harness::new(52);
        let (o, s) = h.train_one_client(&Scaffold::new(), 1, None);
        let k = o.iterations as f32;
        let ck = s.correction.unwrap();
        for ((c, &w), &g) in ck.iter().zip(&o.params).zip(&h.global) {
            let expect = (g - w) / (k * 0.05);
            assert!((c - expect).abs() < 1e-4, "{c} vs {expect}");
        }
    }

    #[test]
    fn server_accumulates_scaled_deltas() {
        let mut sc = Scaffold::new();
        sc.on_init(10, 2);
        let o = LocalOutcome {
            params: vec![0.0, 0.0],
            n_samples: 5,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: Some(vec![10.0, -20.0]),
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        };
        let mut g = vec![0.0f32, 0.0];
        server_update(&mut sc, &mut g, &[o], 1);
        assert_eq!(sc.server_control(), &[1.0, -2.0]);
    }

    #[test]
    fn extra_communication_is_2w() {
        let h = Harness::new(53);
        let m = h.cost_model();
        let c = Scaffold::new().attach_cost(&m);
        assert_eq!(c.extra_comm_bytes(), 2 * m.n_params * 4);
        assert_eq!(c.up_params, m.n_params);
        assert_eq!(c.down_params, m.n_params);
    }

    #[test]
    fn zero_controls_first_round_matches_plain_sgd_path() {
        // With c = c_k = 0 the hook is a no-op, so round 1 equals SlowMo's
        // local run (both plain SGD).
        let h = Harness::new(54);
        let (a, _) = h.train_one_client(&Scaffold::new(), 1, None);
        let (b, _) = h.train_one_client(&super::super::slowmo::SlowMo::new(0.5, 1.0), 1, None);
        assert_eq!(a.params, b.params);
    }
}
