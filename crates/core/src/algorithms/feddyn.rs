//! FedDyn (Acar et al., 2021) — federated learning with dynamic
//! regularization.
//!
//! Each client keeps a linear correction state `lambda_k` (initialized to
//! zero) and minimizes
//!
//! ```text
//! F_k(w) - <lambda_k, w> + (alpha/2) ||w - w_global||^2
//! ```
//!
//! i.e. the per-step gradient is `g - lambda_k + alpha (w - w_global)`.
//! After local training, `lambda_k <- lambda_k - alpha (w_k - w_global)`.
//! The server keeps its own drift state `h` and sets
//! `w <- mean(w_k) - h / alpha` with
//! `h <- h - alpha * (1/N) * sum_{k in S} (w_k - w_prev)`,
//! which makes client optima asymptotically consistent with the global one.

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome, ServerFold,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::optim::{Optimizer, Sgd};
use fedtrip_tensor::{GradAdjust, Sequential};

/// The FedDyn method.
#[derive(Debug, Clone)]
pub struct FedDyn {
    alpha: f32,
    /// Server drift state `h`.
    h: Vec<f32>,
    /// Federation size `N` (set by `on_init`).
    n_clients: usize,
}

impl FedDyn {
    /// Create FedDyn with regularization strength `alpha`
    /// (paper: 1.0 on MNIST, 0.1 on the other datasets).
    ///
    /// # Panics
    /// Panics on non-positive `alpha`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0, "FedDyn alpha must be positive");
        FedDyn {
            alpha,
            h: Vec::new(),
            n_clients: 0,
        }
    }

    /// The regularization strength.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Algorithm for FedDyn {
    fn name(&self) -> &'static str {
        "FedDyn"
    }

    fn on_init(&mut self, n_clients: usize, n_params: usize) {
        self.n_clients = n_clients;
        self.h = vec![0.0; n_params];
    }

    fn make_optimizer(&self, lr: f32, _momentum: f32) -> Box<dyn Optimizer> {
        // §V-A: FedDyn trains locally with plain SGD
        Box::new(Sgd::new(lr))
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let n = net.num_params();
        if state
            .correction
            .as_ref()
            .map(|c| c.len() != n)
            .unwrap_or(true)
        {
            state.correction = Some(vec![0.0; n]);
        }
        let alpha = self.alpha;
        let global = ctx.global;
        // lambda is borrowed, not cloned: the fused sweep only reads it,
        // and the post-round update below happens after the borrow ends
        let adjust = GradAdjust::DynReg {
            alpha,
            lambda: state.correction.as_deref().expect("initialized above"), // lint:allow(panic) — correction seeded earlier in this call
            global,
        };
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);

        let params = net.params_flat();
        // lambda_k <- lambda_k - alpha (w_k - w_global)
        let lam = state.correction.as_mut().expect("initialized above"); // lint:allow(panic) — correction seeded earlier in this call
        for ((lv, &wv), &gl) in lam.iter_mut().zip(&params).zip(global) {
            *lv -= alpha * (wv - gl);
        }
        state.last_round = Some(ctx.round);

        let attach = formulas::feddyn(&CostModel {
            n_params: n,
            fp_per_sample: net.flops_forward(),
            bp_per_sample: net.flops_backward(),
            batch_size: ctx.batch_size,
            local_iterations: iterations,
            local_samples: data.refs.len(),
        });
        LocalOutcome {
            params,
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples) + attach.flops,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn server_begin(&self, fold: &mut ServerFold) {
        // streaming scratch: the per-element drift sum `sum_k (w_k - w_prev)`
        fold.extra = vec![0.0f32; fold.n_params()];
    }

    fn server_fold(&self, fold: &mut ServerFold, outcome: &LocalOutcome, global: &[f32]) {
        for (d, (&p, &g)) in fold.extra.iter_mut().zip(outcome.params.iter().zip(global)) {
            *d += p - g;
        }
    }

    fn server_merge(&self, fold: &mut ServerFold, other: &ServerFold) {
        // the drift scratch is a plain per-element sum over the cohort, so
        // partial sums combine by addition
        for (d, &o) in fold.extra.iter_mut().zip(&other.extra) {
            *d += o;
        }
    }

    fn server_finish(&mut self, global: &mut Vec<f32>, fold: ServerFold, _round: usize) {
        let cohort = fold.plan().cohort;
        let (avg, drift) = fold.into_parts();
        if self.h.len() != global.len() {
            self.h = vec![0.0; global.len()];
        }
        let n = self.n_clients.max(cohort) as f32;
        // h <- h - alpha/N * sum_k (w_k - w_prev)
        for (hv, &d) in self.h.iter_mut().zip(&drift) {
            *hv -= self.alpha * d / n;
        }
        // w <- mean(w_k) - h / alpha
        for ((g, &a), &hv) in global.iter_mut().zip(&avg).zip(&self.h) {
            *g = a - hv / self.alpha;
        }
    }

    fn server_state(&self) -> Vec<Vec<f32>> {
        vec![self.h.clone()]
    }

    fn restore_server_state(&mut self, mut state: Vec<Vec<f32>>) {
        if let Some(h) = state.pop() {
            self.h = h;
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::feddyn(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::server_update;
    use super::super::testutil::*;
    use super::*;

    fn outcome(params: Vec<f32>) -> LocalOutcome {
        LocalOutcome {
            params,
            n_samples: 10,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    #[test]
    fn correction_state_initialized_and_updated() {
        let h = Harness::new(41);
        let (o, s) = h.train_one_client(&FedDyn::new(0.1), 1, None);
        let lam = s.correction.expect("lambda must exist after round");
        // lambda = -alpha (w_k - w_global), nonzero when the model moved
        let expect: Vec<f32> = o
            .params
            .iter()
            .zip(&h.global)
            .map(|(&w, &g)| -0.1 * (w - g))
            .collect();
        for (a, b) in lam.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn server_drift_state_shifts_global_model() {
        let mut fd = FedDyn::new(0.5);
        fd.on_init(4, 2);
        let mut global = vec![0.0f32, 0.0];
        server_update(&mut fd, &mut global, &[outcome(vec![1.0, 1.0])], 1);
        // drift = 1 per coord; h = -0.5*1/4 = -0.125; w = 1 - h/alpha = 1.25
        assert_eq!(global, vec![1.25, 1.25]);
    }

    #[test]
    fn second_round_with_unchanged_clients_keeps_h() {
        let mut fd = FedDyn::new(0.5);
        fd.on_init(4, 1);
        let mut global = vec![0.0f32];
        server_update(&mut fd, &mut global, &[outcome(vec![1.0])], 1);
        let g1 = global[0];
        // clients return exactly the current global: no new drift
        server_update(&mut fd, &mut global, &[outcome(vec![g1])], 2);
        // h unchanged => w = g1 - h/alpha = g1 + 0.25
        assert!((global[0] - (g1 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn uses_plain_sgd_locally() {
        let h = Harness::new(42);
        let (dyn_o, _) = h.train_one_client(&FedDyn::new(1e-9), 1, None);
        let (avg_o, _) = h.train_one_client(&super::super::fedavg::FedAvg::new(), 1, None);
        // with alpha ~ 0 and zero lambda the only difference is the optimizer
        assert_ne!(dyn_o.params, avg_o.params);
    }

    #[test]
    fn attach_cost_matches_fedtrip_row() {
        let h = Harness::new(43);
        let m = h.cost_model();
        assert_eq!(
            FedDyn::new(0.1).attach_cost(&m).flops,
            4.0 * m.local_iterations as f64 * m.n_params as f64
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let _ = FedDyn::new(0.0);
    }
}
