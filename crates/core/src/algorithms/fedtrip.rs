//! FedTrip — the paper's contribution (Algorithm 1).
//!
//! The local loss gains a *triplet* regularizer (Eq. 5):
//!
//! ```text
//! L = F(w) + (mu/2) [ ||w - w_global||^2 - xi ||w - w_hist||^2 ]
//! ```
//!
//! so each local SGD step uses the adjusted gradient (Algorithm 1, line 7):
//!
//! ```text
//! h = ∇F(w) + mu ( (w - w_global) + xi (w_hist - w) )
//! ```
//!
//! The positive anchor pulls the current local model toward the global model
//! (update consistency, as FedProx); the *negative* anchor pushes it away
//! from the client's own historical model, freeing it to explore parameter
//! space instead of being trapped near its previous round's solution. `xi`
//! is the number of rounds since the client last participated, so stale
//! history is pushed away harder.
//!
//! Attach cost: one fused `4|w|`-FLOP vector pass per iteration; no extra
//! communication (the historical model is the client's own copy).

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::{GradAdjust, Sequential};
use serde::{Deserialize, Serialize};

/// How the history coefficient `xi` is derived.
///
/// The paper's prose says `xi` "is set as the interval between the current
/// round and the last round of participating", but its convergence analysis
/// gives `E_k[xi] = p ln p / (p-1)` — which is exactly `E[1/gap]` for the
/// geometric participation gap at rate `p` (and §V-D's observation that
/// `E[xi]` *shrinks* when going from 4-of-10 to 4-of-50 only holds for the
/// inverse). So the faithful rule is `xi = 1 / gap`, which also keeps
/// `xi <= 1`: the proximal anchor always dominates the history repulsion
/// and the regularized objective stays strongly convex (Definition 1).
/// [`XiMode::RawGap`] implements the literal prose reading as an ablation —
/// our experiments show it accelerates early rounds, then diverges once
/// `mu * xi` exceeds the anchor strength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum XiMode {
    /// The paper's rule: `xi = 1 / (rounds since last participation)`.
    Gap,
    /// Ablation: `xi` = the raw participation gap (diverges for gaps > 1).
    RawGap,
    /// Ablation: a fixed `xi` regardless of participation gaps.
    Fixed(f32),
}

/// FedTrip configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedTripConfig {
    /// Regularization strength `mu` (paper: 1.0 for MLP, 0.4 otherwise).
    pub mu: f32,
    /// `xi` derivation rule.
    pub xi_mode: XiMode,
}

impl Default for FedTripConfig {
    fn default() -> Self {
        FedTripConfig {
            mu: 0.4,
            xi_mode: XiMode::Gap,
        }
    }
}

/// The FedTrip method (Algorithm 1).
#[derive(Debug, Clone)]
pub struct FedTrip {
    cfg: FedTripConfig,
}

impl FedTrip {
    /// Create FedTrip.
    ///
    /// # Panics
    /// Panics on negative (or NaN) `mu` or fixed `xi`. A fixed `xi` of zero
    /// is allowed: it degenerates to FedProx and is a useful ablation point.
    pub fn new(cfg: FedTripConfig) -> Self {
        assert!(cfg.mu >= 0.0, "FedTrip mu must be non-negative");
        if let XiMode::Fixed(x) = cfg.xi_mode {
            assert!(x >= 0.0, "fixed xi must be non-negative");
        }
        FedTrip { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &FedTripConfig {
        &self.cfg
    }

    /// Resolve `xi` for a client given its participation gap.
    ///
    /// `gap` is `None` on a client's first participation (no history yet —
    /// the history term is dropped entirely in [`Self::local_train`], so the
    /// resolved `xi` is irrelevant that round for `Gap`/`RawGap`). The engine
    /// computes `gap = t - last_round >= 1`; both gap modes clamp with
    /// `max(1)` so a malformed gap of 0 can never zero out (`RawGap`) or
    /// blow up (`Gap`) the regularizer.
    fn xi(&self, gap: Option<usize>) -> f32 {
        match self.cfg.xi_mode {
            XiMode::Gap => gap.map(|g| 1.0 / g.max(1) as f32).unwrap_or(0.0),
            XiMode::RawGap => gap.map(|g| g.max(1) as f32).unwrap_or(0.0),
            XiMode::Fixed(x) => x,
        }
    }
}

impl Algorithm for FedTrip {
    fn name(&self) -> &'static str {
        "FedTrip"
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let mu = self.cfg.mu;
        let global = ctx.global;
        let xi = self.xi(ctx.gap);
        // First participation: no historical model yet — Algorithm 1 line 4
        // loads w̃^{t-1}; we fall back to the proximal-only update (the
        // history term vanishes), which equals FedProx for that round.
        // The historical model is borrowed, not cloned: the fused sweep
        // only reads it.
        let adjust = match state.historical.as_deref() {
            Some(hist) => GradAdjust::Triplet {
                mu,
                xi,
                global,
                hist,
            },
            None => GradAdjust::Prox { mu, anchor: global },
        };
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);

        let params = net.params_flat();
        // the updated local model becomes next participation's history
        state.historical = Some(params.clone());
        state.last_round = Some(ctx.round);

        let attach = formulas::fedtrip(&CostModel {
            n_params: net.num_params(),
            fp_per_sample: net.flops_forward(),
            bp_per_sample: net.flops_backward(),
            batch_size: ctx.batch_size,
            local_iterations: iterations,
            local_samples: data.refs.len(),
        });
        LocalOutcome {
            params,
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples) + attach.flops,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::fedtrip(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::fedprox::FedProx;
    use super::super::testutil::*;
    use super::*;
    use fedtrip_tensor::vecops::{self, sq_dist};

    fn trip(mu: f32) -> FedTrip {
        FedTrip::new(FedTripConfig {
            mu,
            xi_mode: XiMode::Gap,
        })
    }

    #[test]
    fn first_round_without_history_matches_fedprox_at_same_mu() {
        let h = Harness::new(11);
        let (t, _) = h.train_one_client(&trip(0.4), 1, None);
        let (p, _) = h.train_one_client(&FedProx::new(0.4), 1, None);
        assert_eq!(t.params, p.params);
    }

    #[test]
    fn stores_historical_model_after_round() {
        let h = Harness::new(12);
        let (outcome, state) = h.train_one_client(&trip(0.4), 1, None);
        assert_eq!(state.historical.as_deref(), Some(outcome.params.as_slice()));
        assert_eq!(state.last_round, Some(1));
    }

    #[test]
    fn second_round_diverges_from_prox_because_of_history() {
        let h = Harness::new(13);
        let (_, state) = h.train_one_client(&trip(0.4), 1, None);
        let (t2, _) = h.train_one_client(&trip(0.4), 2, Some(state.clone()));
        // FedProx from the same state ignores history
        let (p2, _) = h.train_one_client(&FedProx::new(0.4), 2, Some(state));
        assert_ne!(t2.params, p2.params);
    }

    #[test]
    fn repulsion_pushes_away_from_history() {
        // With gradient-free dynamics (mu large relative to data gradient),
        // the update should end farther from the historical anchor than
        // FedProx's would.
        let h = Harness::new(14);
        let (_, state) = h.train_one_client(&trip(2.0), 1, None);
        let hist = state.historical.clone().unwrap();
        let (t2, _) = h.train_one_client(&trip(2.0), 2, Some(state.clone()));
        let (p2, _) = h.train_one_client(&FedProx::new(2.0), 2, Some(state));
        let d_trip = sq_dist(&t2.params, &hist);
        let d_prox = sq_dist(&p2.params, &hist);
        assert!(
            d_trip > d_prox,
            "triplet dist to history {d_trip} should exceed prox {d_prox}"
        );
    }

    #[test]
    fn xi_gap_resolution() {
        let t = trip(0.4);
        assert_eq!(t.xi(None), 0.0);
        assert_eq!(t.xi(Some(1)), 1.0);
        // inverse gap: staler history pushes *less* (xi <= 1 keeps the
        // anchor dominant, matching the theory's E[xi] = p ln p / (p-1))
        assert_eq!(t.xi(Some(4)), 0.25);
        let raw = FedTrip::new(FedTripConfig {
            mu: 0.4,
            xi_mode: XiMode::RawGap,
        });
        assert_eq!(raw.xi(Some(7)), 7.0);
        let fixed = FedTrip::new(FedTripConfig {
            mu: 0.4,
            xi_mode: XiMode::Fixed(2.5),
        });
        assert_eq!(fixed.xi(Some(7)), 2.5);
        assert_eq!(fixed.xi(None), 2.5);
    }

    /// Golden values for the adjusted gradient of Algorithm 1, line 7:
    /// `h = ∇F(w) + mu ((w - w_global) + xi (w_hist - w))`, hand-computed at
    /// a point where every term is a dyadic rational, so f32 arithmetic is
    /// exact and the assertions can demand bit equality.
    #[test]
    fn adjusted_gradient_golden_values() {
        let g0 = vec![0.5f32, -1.0, 2.0];
        let w = [1.0f32, 2.0, -1.0];
        let global = [0.5f32, 1.0, 0.0];
        let hist = [2.0f32, 0.0, -2.0];
        let (mu, xi) = (0.5f32, 0.25f32);
        // Per coordinate: h_i = g_i + mu*((w_i - global_i) + xi*(hist_i - w_i))
        //   i=0: 0.5  + 0.5*((1.0 - 0.5)  + 0.25*( 2.0 - 1.0))  = 0.875
        //   i=1: -1.0 + 0.5*((2.0 - 1.0)  + 0.25*( 0.0 - 2.0))  = -0.75
        //   i=2: 2.0  + 0.5*((-1.0 - 0.0) + 0.25*(-2.0 + 1.0))  = 1.375
        let golden = [0.875f32, -0.75, 1.375];

        let mut g = g0.clone();
        vecops::triplet_adjust(&mut g, mu, xi, &w, &global, &hist);
        assert_eq!(g, golden);

        // The unfused reference formulation must agree exactly.
        let mut g_naive = g0.clone();
        vecops::triplet_adjust_naive(&mut g_naive, mu, xi, &w, &global, &hist);
        assert_eq!(g_naive, golden);

        // xi = 0.25 is what Gap mode resolves for a participation gap of 4,
        // and what Fixed(0.25) always resolves — all three routes meet at
        // the same golden point.
        assert_eq!(trip(mu).xi(Some(4)), xi);
        let fixed = FedTrip::new(FedTripConfig {
            mu,
            xi_mode: XiMode::Fixed(0.25),
        });
        assert_eq!(fixed.xi(Some(999)), xi);

        // RawGap golden point at gap = 2 (xi = 2.0):
        //   i=0: 0.5  + 0.5*(0.5  + 2.0*1.0)  = 1.75
        //   i=1: -1.0 + 0.5*(1.0  + 2.0*(-2.0)) = -2.5
        //   i=2: 2.0  + 0.5*(-1.0 + 2.0*(-1.0)) = 0.5
        let raw = FedTrip::new(FedTripConfig {
            mu,
            xi_mode: XiMode::RawGap,
        });
        let xi_raw = raw.xi(Some(2));
        assert_eq!(xi_raw, 2.0);
        let mut g_raw = g0;
        vecops::triplet_adjust(&mut g_raw, mu, xi_raw, &w, &global, &hist);
        assert_eq!(g_raw, [1.75f32, -2.5, 0.5]);
    }

    #[test]
    fn raw_gap_clamps_malformed_zero_gap() {
        let raw = FedTrip::new(FedTripConfig {
            mu: 0.4,
            xi_mode: XiMode::RawGap,
        });
        // gap 0 cannot come out of the engine, but if it ever did, the
        // history term must not silently vanish
        assert_eq!(raw.xi(Some(0)), 1.0);
        let gap = FedTrip::new(FedTripConfig {
            mu: 0.4,
            xi_mode: XiMode::Gap,
        });
        assert_eq!(gap.xi(Some(0)), 1.0);
    }

    #[test]
    fn attach_cost_is_4kw_no_comm() {
        let h = Harness::new(15);
        let m = h.cost_model();
        let c = trip(0.4).attach_cost(&m);
        assert_eq!(c.flops, 4.0 * m.local_iterations as f64 * m.n_params as f64);
        assert_eq!(c.extra_comm_bytes(), 0);
    }

    #[test]
    fn mu_zero_with_history_is_plain_sgd() {
        let h = Harness::new(16);
        let (_, state) = h.train_one_client(&trip(0.0), 1, None);
        let (a, _) = h.train_one_client(&trip(0.0), 2, Some(state));
        let (b, _) = h.train_one_client(&super::super::fedavg::FedAvg::new(), 2, None);
        assert_eq!(a.params, b.params);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_mu() {
        let _ = trip(-1.0);
    }
}
