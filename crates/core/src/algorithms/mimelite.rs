//! MimeLite (Karimireddy et al., 2020) — mimicking centralized SGD with
//! server statistics.
//!
//! The server maintains a momentum statistic `s`. Clients apply it in every
//! local step — `w <- w - lr ((1-beta) g + beta s)` — and additionally
//! compute the *full-batch* gradient of their local data at the received
//! global model, which the server folds into `s`:
//!
//! ```text
//! s <- (1-beta) * mean_k( grad F_k(w_global) ) + beta * s
//! ```
//!
//! The full-batch gradient costs `n (FP + BP)` per round (Appendix A) and
//! its upload doubles communication — the compute/communication profile
//! FedTrip's Table VIII row is contrasted against.

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome, ServerFold,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::optim::{Optimizer, Sgd};
use fedtrip_tensor::{GradAdjust, Sequential};

/// The MimeLite method.
#[derive(Debug, Clone)]
pub struct MimeLite {
    beta: f32,
    /// Server momentum statistic `s`.
    s: Vec<f32>,
}

impl MimeLite {
    /// Create MimeLite with momentum `beta` (common default 0.9).
    ///
    /// # Panics
    /// Panics when `beta` is outside `[0, 1)`.
    pub fn new(beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "MimeLite beta must be in [0,1)");
        MimeLite {
            beta,
            s: Vec::new(),
        }
    }

    /// Read-only view of the server statistic (tests/diagnostics).
    pub fn server_statistic(&self) -> &[f32] {
        &self.s
    }
}

/// Full-batch gradient of the client's data at the model's current
/// parameters, evaluated in chunks to bound memory.
fn full_batch_gradient(net: &mut Sequential, data: &ClientData<'_>, chunk: usize) -> Vec<f32> {
    let n = data.refs.len();
    let mut acc = vec![0.0f64; net.num_params()];
    let mut off = 0;
    while off < n {
        let end = (off + chunk).min(n);
        let (x, y) = data.dataset.batch(&data.refs[off..end]);
        net.zero_grads();
        let _ = net.train_step(&x, &y);
        let g = net.grads_flat();
        // train_step averages over its own batch; re-weight to a global mean
        let w = (end - off) as f64 / n as f64;
        for (a, &gv) in acc.iter_mut().zip(&g) {
            *a += w * gv as f64; // lint:allow(float-fold) — chunk order is fixed by the data-ref sequence
        }
        off = end;
    }
    net.zero_grads();
    acc.into_iter().map(|v| v as f32).collect()
}

impl Algorithm for MimeLite {
    fn name(&self) -> &'static str {
        "MimeLite"
    }

    fn on_init(&mut self, _n_clients: usize, n_params: usize) {
        self.s = vec![0.0; n_params];
    }

    fn make_optimizer(&self, lr: f32, _momentum: f32) -> Box<dyn Optimizer> {
        // momentum is carried by the server statistic, not the local optimizer
        Box::new(Sgd::new(lr))
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let n = net.num_params();
        // full-batch gradient at the *global* model (net is freshly loaded)
        let full_grad = full_batch_gradient(net, data, ctx.batch_size.max(1));

        let beta = self.beta;
        // zeros fallback only materializes on a size change; otherwise the
        // fused sweep reads the server statistic in place
        let zeros;
        let s: &[f32] = if self.s.len() == n {
            &self.s
        } else {
            zeros = vec![0.0f32; n];
            &zeros
        };
        let adjust = GradAdjust::Interp { beta, stat: s };
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);
        state.last_round = Some(ctx.round);

        LocalOutcome {
            params: net.params_flat(),
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            // Appendix A: the attach cost is the full-batch gradient
            train_flops: model_train_flops(net, samples)
                + data.refs.len() as f64 * (net.flops_forward() + net.flops_backward()) as f64,
            aux: Some(full_grad),
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn server_begin(&self, fold: &mut ServerFold) {
        // streaming scratch: the mean full-batch gradient over the cohort
        fold.extra = vec![0.0f32; fold.n_params()];
    }

    fn server_fold(&self, fold: &mut ServerFold, outcome: &LocalOutcome, _global: &[f32]) {
        if let Some(g) = &outcome.aux {
            let k = fold.plan().aux_count.max(1) as f32;
            for (mv, &gv) in fold.extra.iter_mut().zip(g) {
                *mv += gv / k;
            }
        }
    }

    fn server_merge(&self, fold: &mut ServerFold, other: &ServerFold) {
        // each partial scratch is a mean over its own `aux_count` gradients
        // (every `server_fold` divided by its local plan's count), so the
        // union mean is the count-weighted recombination. Runs before the
        // base merge — both plans still describe their partial cohorts.
        let (ka, kb) = (fold.plan().aux_count, other.plan().aux_count);
        let k = (ka + kb).max(1) as f32;
        let (fa, fb) = (ka as f32 / k, kb as f32 / k);
        for (mv, &ov) in fold.extra.iter_mut().zip(&other.extra) {
            *mv = fa * *mv + fb * ov;
        }
    }

    fn server_finish(&mut self, global: &mut Vec<f32>, fold: ServerFold, _round: usize) {
        let (avg, mean_g) = fold.into_parts();
        *global = avg;
        if self.s.len() != global.len() {
            self.s = vec![0.0; global.len()];
        }
        for (sv, &m) in self.s.iter_mut().zip(&mean_g) {
            *sv = (1.0 - self.beta) * m + self.beta * *sv;
        }
    }

    fn server_state(&self) -> Vec<Vec<f32>> {
        vec![self.s.clone()]
    }

    fn restore_server_state(&mut self, mut state: Vec<Vec<f32>>) {
        if let Some(s) = state.pop() {
            self.s = s;
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::mimelite(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::server_update;
    use super::super::testutil::*;
    use super::*;
    use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
    use fedtrip_models::ModelKind;

    #[test]
    fn full_batch_gradient_is_chunk_invariant() {
        let ds = SyntheticVision::new(DatasetKind::MnistLike, 3);
        let refs: Vec<SampleRef> = (0..30u32)
            .map(|i| SampleRef {
                class: (i % 10) as u16,
                id: i / 10,
            })
            .collect();
        let data = ClientData {
            dataset: &ds,
            refs: &refs,
        };
        let mut net = ModelKind::TinyMlp.build(&[1, 28, 28], 10, 3);
        let g_small = full_batch_gradient(&mut net, &data, 7);
        let g_large = full_batch_gradient(&mut net, &data, 30);
        for (a, b) in g_small.iter().zip(&g_large) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn uploads_full_batch_gradient() {
        let h = Harness::new(61);
        let (o, _) = h.train_one_client(&MimeLite::new(0.9), 1, None);
        let g = o.aux.expect("mimelite uploads the full-batch gradient");
        assert_eq!(g.len(), o.params.len());
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn server_statistic_tracks_mean_gradient() {
        let mut ml = MimeLite::new(0.5);
        ml.on_init(4, 2);
        let o = LocalOutcome {
            params: vec![0.0, 0.0],
            n_samples: 5,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: Some(vec![2.0, 4.0]),
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        };
        let mut g = vec![0.0f32, 0.0];
        server_update(&mut ml, &mut g, &[o], 1);
        // s = 0.5 * mean + 0.5 * 0 = [1, 2]
        assert_eq!(ml.server_statistic(), &[1.0, 2.0]);
    }

    #[test]
    fn beta_zero_behaves_like_plain_local_sgd() {
        let h = Harness::new(62);
        let (a, _) = h.train_one_client(&MimeLite::new(0.0), 1, None);
        let (b, _) = h.train_one_client(&super::super::slowmo::SlowMo::new(0.5, 1.0), 1, None);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn attach_cost_is_full_batch_pass() {
        let h = Harness::new(63);
        let m = h.cost_model();
        let c = MimeLite::new(0.9).attach_cost(&m);
        assert_eq!(
            c.flops,
            m.local_samples as f64 * (m.fp_per_sample + m.bp_per_sample) as f64
        );
        assert_eq!(c.extra_comm_bytes(), 2 * m.n_params * 4);
        assert_eq!(c.up_params, m.n_params);
        assert_eq!(c.down_params, m.n_params);
    }
}
