//! FedAvg (McMahan et al., 2017) — the fundamental FL baseline.

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::{GradAdjust, Sequential};

/// Plain local SGD + weighted averaging. No attaching operations.
#[derive(Debug, Clone, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Create a FedAvg instance.
    pub fn new() -> Self {
        FedAvg
    }
}

impl Algorithm for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) =
            run_local_sgd(net, data, ctx, opt.as_mut(), &GradAdjust::None);
        state.last_round = Some(ctx.round);
        LocalOutcome {
            params: net.params_flat(),
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples),
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::fedavg(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn local_training_reduces_loss() {
        let h = Harness::new(42);
        let (outcome, _) = h.train_one_client(&FedAvg::new(), 1, None);
        assert!(outcome.iterations > 0);
        assert!(outcome.mean_loss.is_finite());
        // params must have moved away from the global model
        assert_ne!(outcome.params, h.global);
    }

    #[test]
    fn attach_cost_is_zero() {
        let h = Harness::new(1);
        let c = FedAvg::new().attach_cost(&h.cost_model());
        assert_eq!(c.flops, 0.0);
        assert_eq!(c.extra_comm_bytes(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let h = Harness::new(7);
        let (a, _) = h.train_one_client(&FedAvg::new(), 1, None);
        let (b, _) = h.train_one_client(&FedAvg::new(), 1, None);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn records_participation_round() {
        let h = Harness::new(3);
        let (_, state) = h.train_one_client(&FedAvg::new(), 5, None);
        assert_eq!(state.last_round, Some(5));
    }
}
