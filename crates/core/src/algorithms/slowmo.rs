//! SlowMo (Wang et al., 2019) — server-side slow momentum.
//!
//! Clients run plain local SGD (the paper pairs SlowMo with a momentum-free
//! local optimizer, §V-A); the server treats the aggregated model delta as a
//! pseudo-gradient and applies a slow momentum step:
//!
//! ```text
//! u_t = beta * u_{t-1} + (w_{t-1} - w_avg)
//! w_t = w_{t-1} - alpha * u_t
//! ```

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome, ServerFold,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::optim::{Optimizer, Sgd};
use fedtrip_tensor::{GradAdjust, Sequential};

/// The SlowMo method.
#[derive(Debug, Clone)]
pub struct SlowMo {
    beta: f32,
    server_lr: f32,
    momentum_buf: Vec<f32>,
}

impl SlowMo {
    /// Create SlowMo with slow-momentum `beta` and server learning rate
    /// `alpha` (common defaults: 0.5 and 1.0).
    ///
    /// # Panics
    /// Panics when `beta` is outside `[0, 1)` or `alpha` non-positive.
    pub fn new(beta: f32, server_lr: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "SlowMo beta must be in [0,1)");
        assert!(server_lr > 0.0, "SlowMo server lr must be positive");
        SlowMo {
            beta,
            server_lr,
            momentum_buf: Vec::new(),
        }
    }
}

impl Algorithm for SlowMo {
    fn name(&self) -> &'static str {
        "SlowMo"
    }

    fn on_init(&mut self, _n_clients: usize, n_params: usize) {
        self.momentum_buf = vec![0.0; n_params];
    }

    fn make_optimizer(&self, lr: f32, _momentum: f32) -> Box<dyn Optimizer> {
        // §V-A: SlowMo trains locally with plain SGD
        Box::new(Sgd::new(lr))
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let (iterations, samples, mean_loss) =
            run_local_sgd(net, data, ctx, opt.as_mut(), &GradAdjust::None);
        state.last_round = Some(ctx.round);
        LocalOutcome {
            params: net.params_flat(),
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples),
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn server_finish(&mut self, global: &mut Vec<f32>, fold: ServerFold, _round: usize) {
        let avg = fold.into_avg();
        if self.momentum_buf.len() != global.len() {
            self.momentum_buf = vec![0.0; global.len()];
        }
        for ((u, g), a) in self
            .momentum_buf
            .iter_mut()
            .zip(global.iter_mut())
            .zip(&avg)
        {
            *u = self.beta * *u + (*g - a);
            *g -= self.server_lr * *u;
        }
    }

    fn server_state(&self) -> Vec<Vec<f32>> {
        vec![self.momentum_buf.clone()]
    }

    fn restore_server_state(&mut self, mut state: Vec<Vec<f32>>) {
        if let Some(buf) = state.pop() {
            self.momentum_buf = buf;
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::slowmo(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::server_update;
    use super::super::testutil::*;
    use super::*;

    fn outcome(params: Vec<f32>) -> LocalOutcome {
        LocalOutcome {
            params,
            n_samples: 10,
            mean_loss: 0.0,
            iterations: 1,
            train_flops: 0.0,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    #[test]
    fn first_server_step_with_unit_lr_reaches_average() {
        // u = 0.5*0 + (g - avg); w = g - 1.0*u = avg
        let mut s = SlowMo::new(0.5, 1.0);
        s.on_init(10, 2);
        let mut global = vec![1.0f32, 1.0];
        server_update(&mut s, &mut global, &[outcome(vec![0.0, 0.0])], 1);
        assert_eq!(global, vec![0.0, 0.0]);
    }

    #[test]
    fn momentum_carries_across_rounds() {
        let mut s = SlowMo::new(0.5, 1.0);
        s.on_init(10, 1);
        let mut global = vec![1.0f32];
        // round 1: avg 0 => u = 1, w = 0
        server_update(&mut s, &mut global, &[outcome(vec![0.0])], 1);
        assert_eq!(global, vec![0.0]);
        // round 2: avg = w (no local movement) => delta 0, u = 0.5 => w = -0.5
        server_update(&mut s, &mut global, &[outcome(vec![0.0])], 2);
        assert_eq!(global, vec![-0.5]);
    }

    #[test]
    fn beta_zero_unit_lr_is_plain_averaging() {
        let mut s = SlowMo::new(0.0, 1.0);
        s.on_init(4, 2);
        let mut global = vec![5.0f32, -5.0];
        server_update(&mut s, &mut global, &[outcome(vec![1.0, 2.0])], 1);
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn local_training_uses_plain_sgd() {
        // SlowMo's local run from identical state must differ from a
        // momentum-SGD run (FedAvg) on the same data when momentum matters.
        let h = Harness::new(31);
        let (slow, _) = h.train_one_client(&SlowMo::new(0.5, 1.0), 1, None);
        let (avg, _) = h.train_one_client(&super::super::fedavg::FedAvg::new(), 1, None);
        assert_ne!(slow.params, avg.params);
    }

    #[test]
    fn no_attach_cost() {
        let h = Harness::new(32);
        let c = SlowMo::new(0.5, 1.0).attach_cost(&h.cost_model());
        assert_eq!(c.flops, 0.0);
        assert_eq!(c.extra_comm_bytes(), 0);
    }
}
