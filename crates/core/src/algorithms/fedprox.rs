//! FedProx (Li et al., 2020) — proximal model regularization.

use super::{
    model_train_flops, run_local_sgd, Algorithm, ClientData, ClientState, LocalContext,
    LocalOutcome,
};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_tensor::{GradAdjust, Sequential};

/// FedProx adds the proximal term `(mu/2) ||w - w_global||^2` to the local
/// loss, i.e. each SGD step uses `g + mu (w - w_global)`. This restrains
/// client drift but — as the paper argues in §IV-B / Fig. 3 — also blocks
/// exploration beyond the global model's neighbourhood.
#[derive(Debug, Clone)]
pub struct FedProx {
    mu: f32,
}

impl FedProx {
    /// Create FedProx with proximal coefficient `mu` (paper default: 0.1).
    ///
    /// # Panics
    /// Panics on negative `mu`.
    pub fn new(mu: f32) -> Self {
        assert!(mu >= 0.0, "FedProx mu must be non-negative");
        FedProx { mu }
    }

    /// The proximal coefficient.
    pub fn mu(&self) -> f32 {
        self.mu
    }
}

impl Algorithm for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);
        let adjust = GradAdjust::Prox {
            mu: self.mu,
            anchor: ctx.global,
        };
        let (iterations, samples, mean_loss) = run_local_sgd(net, data, ctx, opt.as_mut(), &adjust);
        state.last_round = Some(ctx.round);
        let attach = formulas::fedprox(&CostModel {
            n_params: net.num_params(),
            fp_per_sample: net.flops_forward(),
            bp_per_sample: net.flops_backward(),
            batch_size: ctx.batch_size,
            local_iterations: iterations,
            local_samples: data.refs.len(),
        });
        LocalOutcome {
            params: net.params_flat(),
            n_samples: data.refs.len(),
            mean_loss,
            iterations,
            train_flops: model_train_flops(net, samples) + attach.flops,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::fedprox(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::fedavg::FedAvg;
    use super::super::testutil::*;
    use super::*;
    use fedtrip_tensor::vecops::sq_dist;

    #[test]
    fn stays_closer_to_global_than_fedavg() {
        // The defining property of the proximal term: with a large mu the
        // local model ends the round nearer to the global model.
        let h = Harness::new(5);
        let (avg, _) = h.train_one_client(&FedAvg::new(), 1, None);
        let (prox, _) = h.train_one_client(&FedProx::new(5.0), 1, None);
        let d_avg = sq_dist(&avg.params, &h.global);
        let d_prox = sq_dist(&prox.params, &h.global);
        assert!(
            d_prox < d_avg,
            "prox dist {d_prox} should be < fedavg dist {d_avg}"
        );
    }

    #[test]
    fn mu_zero_equals_fedavg() {
        let h = Harness::new(6);
        let (avg, _) = h.train_one_client(&FedAvg::new(), 1, None);
        let (prox, _) = h.train_one_client(&FedProx::new(0.0), 1, None);
        assert_eq!(avg.params, prox.params);
    }

    #[test]
    fn attach_cost_is_2kw() {
        let h = Harness::new(7);
        let m = h.cost_model();
        let c = FedProx::new(0.1).attach_cost(&m);
        assert_eq!(c.flops, 2.0 * m.local_iterations as f64 * m.n_params as f64);
        assert_eq!(c.extra_comm_bytes(), 0);
    }

    #[test]
    fn train_flops_include_attach_overhead() {
        let h = Harness::new(8);
        let (avg, _) = h.train_one_client(&FedAvg::new(), 1, None);
        let (prox, _) = h.train_one_client(&FedProx::new(0.1), 1, None);
        assert!(prox.train_flops > avg.train_flops);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_mu() {
        let _ = FedProx::new(-0.1);
    }
}
