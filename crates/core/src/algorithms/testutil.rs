//! Shared fixture for algorithm unit tests: a tiny MLP on a handful of
//! synthetic samples, so each method's update rule can be exercised in
//! milliseconds.

use super::{Algorithm, ClientData, ClientState, LocalContext, LocalOutcome};
use crate::costs::CostModel;
use fedtrip_data::synth::{DatasetKind, SampleRef, SyntheticVision};
use fedtrip_models::ModelKind;
use fedtrip_tensor::Sequential;

pub struct Harness {
    pub dataset: SyntheticVision,
    pub refs: Vec<SampleRef>,
    pub template: Sequential,
    pub global: Vec<f32>,
    pub seed: u64,
}

impl Harness {
    pub fn new(seed: u64) -> Self {
        let dataset = SyntheticVision::new(DatasetKind::MnistLike, seed);
        // 40 samples, 4 per class
        let refs: Vec<SampleRef> = (0..40u32)
            .map(|i| SampleRef {
                class: (i % 10) as u16,
                id: i / 10,
            })
            .collect();
        let template = ModelKind::TinyMlp.build(&[1, 28, 28], 10, seed);
        let global = template.params_flat();
        Harness {
            dataset,
            refs,
            template,
            global,
            seed,
        }
    }

    pub fn ctx<'a>(&'a self, round: usize, gap: Option<usize>) -> LocalContext<'a> {
        LocalContext {
            round,
            client_id: 0,
            global: &self.global,
            gap,
            epochs: 1,
            batch_size: 20,
            lr: 0.05,
            momentum: 0.9,
            seed: self.seed,
        }
    }

    /// Run one client's local training from the current global model.
    pub fn train_one_client(
        &self,
        alg: &dyn Algorithm,
        round: usize,
        state_in: Option<ClientState>,
    ) -> (LocalOutcome, ClientState) {
        let mut net = self.template.clone();
        net.set_params_flat(&self.global);
        let mut state = state_in.unwrap_or_default();
        let gap = state.last_round.map(|lr| round.saturating_sub(lr));
        let data = ClientData {
            dataset: &self.dataset,
            refs: &self.refs,
        };
        let ctx = self.ctx(round, gap);
        let outcome = alg.local_train(&mut net, &data, &mut state, &ctx);
        (outcome, state)
    }

    pub fn cost_model(&self) -> CostModel {
        CostModel {
            n_params: self.template.num_params(),
            fp_per_sample: self.template.flops_forward(),
            bp_per_sample: self.template.flops_backward(),
            batch_size: 20,
            local_iterations: 2,
            local_samples: self.refs.len(),
        }
    }
}
