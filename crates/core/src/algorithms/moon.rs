//! MOON (Li et al., 2021) — model-contrastive federated learning.
//!
//! MOON augments the local loss with a contrastive term over *feature
//! representations*: for each sample, the current model's features `z`
//! should align with the global model's features `z_glob` (positive pair)
//! and repel the previous local model's features `z_prev` (negative pair):
//!
//! ```text
//! l_con = -log( exp(sim(z, z_glob)/tau)
//!             / (exp(sim(z, z_glob)/tau) + exp(sim(z, z_prev)/tau)) )
//! ```
//!
//! This is the method FedTrip positions itself against: MOON extracts the
//! same global/historical information but needs **two extra forward passes
//! per sample per iteration** (`K * M * (1+p) * FP` attach FLOPs, Appendix
//! A), whereas FedTrip's parameter-space triplet costs only `4K|w|`.

use super::{model_train_flops, Algorithm, ClientData, ClientState, LocalContext, LocalOutcome};
use crate::costs::{formulas, AttachCost, CostModel};
use fedtrip_data::loader::BatchIter;
use fedtrip_tensor::{Sequential, Tensor};

/// The MOON method.
#[derive(Debug, Clone)]
pub struct Moon {
    mu: f32,
    tau: f32,
}

impl Moon {
    /// Create MOON with contrastive weight `mu` (paper: 1.0) and temperature
    /// `tau` (paper: 0.5).
    ///
    /// # Panics
    /// Panics on negative `mu` or non-positive `tau`.
    pub fn new(mu: f32, tau: f32) -> Self {
        assert!(mu >= 0.0, "MOON mu must be non-negative");
        assert!(tau > 0.0, "MOON tau must be positive");
        Moon { mu, tau }
    }

    /// Contrastive weight.
    pub fn mu(&self) -> f32 {
        self.mu
    }

    /// Temperature.
    pub fn tau(&self) -> f32 {
        self.tau
    }
}

/// Gradient of `cos(z, a)` with respect to `z`, written into `out`.
fn d_cos_dz(z: &[f32], a: &[f32], out: &mut [f32]) {
    let nz = fedtrip_tensor::vecops::norm(z).max(1e-12);
    let na = fedtrip_tensor::vecops::norm(a).max(1e-12);
    let cos = fedtrip_tensor::vecops::dot(z, a) / (nz * na);
    let inv = 1.0 / (nz * na);
    let self_term = cos / (nz * nz);
    for ((o, &zv), &av) in out.iter_mut().zip(z).zip(a) {
        *o = (av as f64 * inv - self_term * zv as f64) as f32;
    }
}

/// Per-sample contrastive loss and feature gradient.
///
/// Returns `(l_con, grad_z)` for one sample's `(z, z_glob, z_prev)`.
fn contrastive(z: &[f32], zg: &[f32], zp: &[f32], tau: f32) -> (f64, Vec<f32>) {
    let sim_g = fedtrip_tensor::vecops::cosine_similarity(z, zg) / tau as f64;
    let sim_p = fedtrip_tensor::vecops::cosine_similarity(z, zp) / tau as f64;
    // softmax over {positive, negative} logits, numerically stabilized
    let m = sim_g.max(sim_p);
    let eg = (sim_g - m).exp();
    let ep = (sim_p - m).exp();
    let sigma_g = eg / (eg + ep);
    let sigma_p = 1.0 - sigma_g;
    let loss = -(sigma_g.max(1e-300)).ln();

    // d loss / d sim_g = sigma_g - 1 ; d loss / d sim_p = sigma_p
    let mut dg = vec![0.0f32; z.len()];
    let mut dp = vec![0.0f32; z.len()];
    d_cos_dz(z, zg, &mut dg);
    d_cos_dz(z, zp, &mut dp);
    let cg = (sigma_g - 1.0) / tau as f64;
    let cp = sigma_p / tau as f64;
    let grad: Vec<f32> = dg
        .iter()
        .zip(&dp)
        .map(|(&g, &p)| (cg * g as f64 + cp * p as f64) as f32)
        .collect();
    (loss, grad)
}

impl Algorithm for Moon {
    fn name(&self) -> &'static str {
        "MOON"
    }

    fn local_train(
        &self,
        net: &mut Sequential,
        data: &ClientData<'_>,
        state: &mut ClientState,
        ctx: &LocalContext<'_>,
    ) -> LocalOutcome {
        let mut opt = self.make_optimizer(ctx.lr, ctx.momentum);

        // Reference models: the global model and the previous local model
        // (global on first participation, per the MOON paper).
        let mut net_glob = net.clone();
        net_glob.set_params_flat(ctx.global);
        let mut net_prev = net.clone();
        match &state.historical {
            Some(h) => net_prev.set_params_flat(h),
            None => net_prev.set_params_flat(ctx.global),
        }

        let mut iterations = 0usize;
        let mut samples = 0usize;
        let mut loss_sum = 0.0f64;

        for epoch in 0..ctx.epochs {
            let mut rng = ctx.epoch_rng(epoch);
            for (x, y) in BatchIter::new(data.dataset, data.refs, ctx.batch_size, &mut rng) {
                let batch = y.len();
                net.zero_grads();
                let (logits, z) = net.forward_with_features(&x);
                let (_, zg) = net_glob.forward_with_features(&x);
                let (_, zp) = net_prev.forward_with_features(&x);
                let (ce_loss, ce_grad) = net.loss_head().forward_backward(&logits, &y);

                let dim = z.len() / batch;
                let mut fgrad = Tensor::zeros(z.shape());
                let mut con_sum = 0.0f64;
                for bi in 0..batch {
                    let zs = &z.as_slice()[bi * dim..(bi + 1) * dim];
                    let zgs = &zg.as_slice()[bi * dim..(bi + 1) * dim];
                    let zps = &zp.as_slice()[bi * dim..(bi + 1) * dim];
                    let (l, g) = contrastive(zs, zgs, zps, self.tau);
                    con_sum += l;
                    let scale = self.mu / batch as f32;
                    let dst = &mut fgrad.as_mut_slice()[bi * dim..(bi + 1) * dim];
                    for (d, &gv) in dst.iter_mut().zip(&g) {
                        *d = scale * gv;
                    }
                }
                net.backward_with_feature_grad(&ce_grad, &fgrad);
                opt.step(net);

                iterations += 1;
                samples += batch;
                loss_sum += ce_loss + self.mu as f64 * con_sum / batch as f64; // lint:allow(float-fold) — scalar loss bookkeeping in fixed batch order, not a param fold
            }
        }

        let params = net.params_flat();
        state.historical = Some(params.clone());
        state.last_round = Some(ctx.round);

        // Attach cost: the two extra forward passes actually executed.
        let extra_fwd = 2.0 * samples as f64 * net.flops_forward() as f64;
        LocalOutcome {
            params,
            n_samples: data.refs.len(),
            mean_loss: if iterations > 0 {
                loss_sum / iterations as f64
            } else {
                0.0
            },
            iterations,
            train_flops: model_train_flops(net, samples) + extra_fwd,
            aux: None,
            staleness: 0,
            agg_weight: 1.0,
            dense_down: true,
        }
    }

    fn attach_cost(&self, m: &CostModel) -> AttachCost {
        formulas::moon(m, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::super::fedavg::FedAvg;
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn contrastive_loss_is_log2_when_anchors_coincide() {
        // z_glob == z_prev => sigma = 0.5 => loss = ln 2
        let z = [1.0f32, 0.5, -0.3];
        let a = [0.2f32, 0.9, 0.4];
        let (l, _) = contrastive(&z, &a, &a, 0.5);
        assert!((l - (2.0f64).ln()).abs() < 1e-9, "loss {l}");
    }

    #[test]
    fn contrastive_loss_small_when_aligned_with_global() {
        let z = [1.0f32, 0.0];
        let zg = [1.0f32, 0.0]; // perfectly aligned positive
        let zp = [-1.0f32, 0.0]; // perfectly opposed negative
        let (l, _) = contrastive(&z, &zg, &zp, 0.5);
        // sim_g = 2.0, sim_p = -2.0 -> near-zero loss
        assert!(l < 0.05, "loss {l}");
    }

    #[test]
    fn contrastive_gradient_matches_finite_difference() {
        let z = vec![0.8f32, -0.4, 0.3, 0.1];
        let zg = vec![0.5f32, 0.5, -0.2, 0.7];
        let zp = vec![-0.6f32, 0.2, 0.9, -0.3];
        let tau = 0.5;
        let (_, grad) = contrastive(&z, &zg, &zp, tau);
        let eps = 1e-3f32;
        for i in 0..z.len() {
            let mut zp_ = z.clone();
            zp_[i] += eps;
            let (lp, _) = contrastive(&zp_, &zg, &zp, tau);
            let mut zm_ = z.clone();
            zm_[i] -= eps;
            let (lm, _) = contrastive(&zm_, &zg, &zp, tau);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - grad[i]).abs() < 1e-3,
                "i={i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn mu_zero_matches_fedavg() {
        let h = Harness::new(21);
        let (m, _) = h.train_one_client(&Moon::new(0.0, 0.5), 1, None);
        let (a, _) = h.train_one_client(&FedAvg::new(), 1, None);
        // same data order, same CE gradients, zero contrastive weight
        for (x, y) in m.params.iter().zip(&a.params) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn updates_historical_model() {
        let h = Harness::new(22);
        let (o, s) = h.train_one_client(&Moon::new(1.0, 0.5), 1, None);
        assert_eq!(s.historical.as_deref(), Some(o.params.as_slice()));
    }

    #[test]
    fn train_flops_include_double_forward() {
        let h = Harness::new(23);
        let (m, _) = h.train_one_client(&Moon::new(1.0, 0.5), 1, None);
        let (a, _) = h.train_one_client(&FedAvg::new(), 1, None);
        let fp = h.template.flops_forward() as f64;
        let expect_extra = 2.0 * h.refs.len() as f64 * fp;
        assert!(
            (m.train_flops - a.train_flops - expect_extra).abs() < 1.0,
            "extra {} vs {}",
            m.train_flops - a.train_flops,
            expect_extra
        );
    }

    #[test]
    fn attach_formula_counts_two_forwards_per_sample() {
        let h = Harness::new(24);
        let m = h.cost_model();
        let c = Moon::new(1.0, 0.5).attach_cost(&m);
        let expect = m.local_iterations as f64 * m.batch_size as f64 * 2.0 * m.fp_per_sample as f64;
        assert_eq!(c.flops, expect);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn rejects_bad_tau() {
        let _ = Moon::new(1.0, 0.0);
    }
}
