//! Exact t-SNE (van der Maaten & Hinton, 2008).
//!
//! The paper's Fig. 2 visualizes global-vs-local feature representations
//! with t-SNE. The embedding sets there are small (a few hundred test
//! samples), so the exact O(n²) formulation is appropriate — no Barnes-Hut
//! tree needed. Implements the standard recipe: perplexity calibration by
//! per-point binary search, symmetrized affinities, early exaggeration, and
//! momentum gradient descent on a 2-d embedding.

use fedtrip_tensor::rng::Prng;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbourhood size).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub exaggeration: f64,
    /// Seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 350,
            learning_rate: 150.0,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Exact t-SNE runner.
#[derive(Debug, Clone)]
pub struct Tsne {
    cfg: TsneConfig,
}

impl Tsne {
    /// Create a runner.
    pub fn new(cfg: TsneConfig) -> Self {
        Tsne { cfg }
    }

    /// Embed `n` points of dimension `d` (row-major `data`, length `n*d`)
    /// into 2-d. Returns `n` (x, y) pairs.
    ///
    /// # Panics
    /// Panics when `data.len()` is not a multiple of `d`, or fewer than 4
    /// points are supplied.
    pub fn embed(&self, data: &[f32], d: usize) -> Vec<(f64, f64)> {
        assert!(
            d > 0 && data.len().is_multiple_of(d),
            "data length not divisible by d"
        );
        let n = data.len() / d;
        assert!(n >= 4, "t-SNE needs at least 4 points");

        let p = joint_affinities(data, n, d, self.cfg.perplexity);

        // init: small gaussian
        let mut rng = Prng::seed_from_u64(self.cfg.seed);
        let mut y: Vec<f64> = (0..2 * n).map(|_| rng.normal() as f64 * 1e-2).collect();
        let mut vel = vec![0.0f64; 2 * n];
        let mut grad = vec![0.0f64; 2 * n];
        let exag_until = self.cfg.iterations / 4;
        // the standard n/exaggeration heuristic keeps small embeddings from
        // overshooting while still moving large ones
        let lr = self
            .cfg
            .learning_rate
            .min((n as f64 / self.cfg.exaggeration).max(2.0));

        for iter in 0..self.cfg.iterations {
            let exag = if iter < exag_until {
                self.cfg.exaggeration
            } else {
                1.0
            };
            // student-t affinities in embedding space
            let mut q_num = vec![0.0f64; n * n];
            let mut z = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = y[2 * i] - y[2 * j];
                    let dy = y[2 * i + 1] - y[2 * j + 1];
                    let num = 1.0 / (1.0 + dx * dx + dy * dy);
                    q_num[i * n + j] = num;
                    q_num[j * n + i] = num;
                    z += 2.0 * num;
                }
            }
            let z = z.max(1e-12);

            grad.fill(0.0);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let num = q_num[i * n + j];
                    let q = (num / z).max(1e-12);
                    let mult = (exag * p[i * n + j] - q) * num;
                    let dx = y[2 * i] - y[2 * j];
                    let dy = y[2 * i + 1] - y[2 * j + 1];
                    grad[2 * i] += 4.0 * mult * dx;
                    grad[2 * i + 1] += 4.0 * mult * dy;
                }
            }

            let momentum = if iter < exag_until { 0.5 } else { 0.8 };
            for k in 0..2 * n {
                vel[k] = momentum * vel[k] - lr * grad[k];
                y[k] += vel[k];
            }
            // recentre to keep coordinates bounded
            let (mx, my) = (
                y.iter().step_by(2).sum::<f64>() / n as f64,
                y.iter().skip(1).step_by(2).sum::<f64>() / n as f64,
            );
            for i in 0..n {
                y[2 * i] -= mx;
                y[2 * i + 1] -= my;
            }
        }

        (0..n).map(|i| (y[2 * i], y[2 * i + 1])).collect()
    }
}

/// Symmetrized, normalized input affinities `P` with per-point bandwidth
/// calibrated to the target perplexity by binary search.
fn joint_affinities(data: &[f32], n: usize, d: usize, perplexity: f64) -> Vec<f64> {
    // pairwise squared distances
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &data[i * d..(i + 1) * d];
            let b = &data[j * d..(j + 1) * d];
            let dist: f64 = a
                .iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let e = (x - y) as f64;
                    e * e
                })
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        // binary search beta = 1/(2 sigma^2)
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        let row = &d2[i * n..(i + 1) * n];
        let mut probs = vec![0.0f64; n];
        for _ in 0..64 {
            let mut sum = 0.0f64;
            for (j, pr) in probs.iter_mut().enumerate() {
                *pr = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += *pr;
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the conditional distribution
            let mut h = 0.0f64;
            for pr in probs.iter_mut() {
                *pr /= sum;
                if *pr > 1e-12 {
                    h -= *pr * pr.ln();
                }
            }
            let diff = h - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        for j in 0..n {
            p[i * n + j] = probs[j];
        }
    }

    // symmetrize and normalize
    let mut joint = vec![0.0f64; n * n];
    let norm = 1.0 / (2.0 * n as f64);
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = (p[i * n + j] + p[j * n + i]) * norm;
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian clusters in 10-d.
    fn clustered_data(per_cluster: usize, seed: u64) -> (Vec<f32>, Vec<usize>) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per_cluster {
                for k in 0..10 {
                    let center = if k == c { 8.0 } else { 0.0 };
                    data.push(center + rng.normal() * 0.3);
                }
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn affinities_are_symmetric_and_normalized() {
        let (data, _) = clustered_data(5, 1);
        let p = joint_affinities(&data, 15, 10, 5.0);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        for i in 0..15 {
            for j in 0..15 {
                assert!((p[i * 15 + j] - p[j * 15 + i]).abs() < 1e-12);
            }
            assert_eq!(p[i * 15 + i], 0.0);
        }
    }

    #[test]
    fn separates_well_separated_clusters() {
        let (data, labels) = clustered_data(8, 2);
        let emb = Tsne::new(TsneConfig {
            perplexity: 5.0,
            iterations: 250,
            ..TsneConfig::default()
        })
        .embed(&data, 10);

        // mean intra-cluster distance must be well below inter-cluster
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..emb.len() {
            for j in (i + 1)..emb.len() {
                let d = ((emb[i].0 - emb[j].0).powi(2) + (emb[i].1 - emb[j].1).powi(2)).sqrt();
                if labels[i] == labels[j] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra = intra.0 / intra.1 as f64;
        let inter = inter.0 / inter.1 as f64;
        assert!(
            inter > 2.0 * intra,
            "clusters not separated: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn embedding_is_deterministic() {
        let (data, _) = clustered_data(4, 3);
        let cfg = TsneConfig {
            perplexity: 4.0,
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = Tsne::new(cfg).embed(&data, 10);
        let b = Tsne::new(cfg).embed(&data, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn embedding_is_centred() {
        let (data, _) = clustered_data(4, 4);
        let emb = Tsne::new(TsneConfig {
            perplexity: 4.0,
            iterations: 40,
            ..TsneConfig::default()
        })
        .embed(&data, 10);
        let mx: f64 = emb.iter().map(|p| p.0).sum::<f64>() / emb.len() as f64;
        let my: f64 = emb.iter().map(|p| p.1).sum::<f64>() / emb.len() as f64;
        assert!(mx.abs() < 1e-6 && my.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn rejects_tiny_inputs() {
        let _ = Tsne::new(TsneConfig::default()).embed(&[0.0; 20], 10);
    }
}
