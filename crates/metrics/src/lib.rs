//! # fedtrip-metrics
//!
//! Evaluation utilities for the FedTrip reproduction:
//!
//! * [`stats`] — exponential moving averages (the smoothing applied to the
//!   paper's Fig. 5 curves), five-number boxplot summaries (Fig. 6),
//!   mean/variance helpers (Fig. 7's circle radii), and the
//!   time-to-target-accuracy metric for virtual-clock runtimes.
//! * [`tsne`] — an exact O(n²) t-SNE implementation for the Fig. 2 feature
//!   visualizations.
//! * [`report`] — fixed-width/markdown table rendering and JSON artifact
//!   writing, shared by every table/figure binary so each prints
//!   paper-vs-measured rows and drops machine-readable results.

#![forbid(unsafe_code)]

pub mod report;
pub mod stats;
pub mod tsne;

pub use report::Table;
pub use stats::{ema, gini, quantile, time_to_target, BoxplotSummary, Summary};
pub use tsne::{Tsne, TsneConfig};
