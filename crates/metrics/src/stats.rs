//! Summary statistics used across the evaluation.

use serde::{Deserialize, Serialize};

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`:
/// `y_t = alpha * x_t + (1 - alpha) * y_{t-1}` (the smoothing the paper
/// applies to the Fig. 5 convergence curves).
///
/// # Panics
/// Panics when `alpha` is outside `(0, 1]`.
pub fn ema(xs: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "EMA alpha must be in (0,1]");
    let mut out = Vec::with_capacity(xs.len());
    let mut prev: Option<f64> = None;
    for &x in xs {
        let y = match prev {
            None => x,
            Some(p) => alpha * x + (1.0 - alpha) * p,
        };
        out.push(y);
        prev = Some(y);
    }
    out
}

/// Time-to-target: the first entry of `times` whose paired `values` entry
/// reaches `target`, or `None` when the series never gets there.
///
/// The companion of the paper's rounds-to-target-accuracy metric for
/// runtimes with a virtual wall-clock: pass per-round virtual timestamps and
/// evaluated accuracies to get the virtual seconds a scheduler needed to hit
/// a target accuracy.
///
/// # Panics
/// Panics when `times` and `values` have different lengths.
pub fn time_to_target(times: &[f64], values: &[f64], target: f64) -> Option<f64> {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    times
        .iter()
        .zip(values)
        .find(|(_, &v)| v >= target)
        .map(|(&t, _)| t)
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of an unsorted slice.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input")); // lint:allow(panic) — finite inputs are the documented contract
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Gini coefficient of a non-negative sample — the participation-fairness
/// metric of the availability scenarios: feed it per-client participation
/// counts (zeros included for clients that never ran) and it reports how
/// unequally the selection strategy spread the work.
///
/// Uses the sorted-sample formula
/// `G = (2 Σ_i i·x_(i)) / (n Σ x) − (n + 1) / n` with 1-based ranks over
/// the ascending sort, clamped into `[0, 1]` against floating-point
/// drift. An empty or all-zero sample reports `0` (perfect equality —
/// nobody participated, nobody was favored); a uniform sample reports `0`;
/// the value is invariant under permutation of the input.
///
/// # Panics
/// Panics when any entry is negative or non-finite.
pub fn gini(xs: &[f64]) -> f64 {
    assert!(
        xs.iter().all(|x| x.is_finite() && *x >= 0.0),
        "gini input must be non-negative and finite"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // an all-equal sample is definitionally perfect equality; answering 0
    // exactly (instead of the formula's ~n·ε float drift) keeps "uniform
    // participation" distinguishable from genuinely unequal ones
    if sorted.first() == sorted.last() {
        return 0.0;
    }
    let ranked: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i + 1) as f64 * x)
        .sum();
    ((2.0 * ranked) / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0)
}

/// Mean / variance / extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub var: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty slice");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            var,
            min,
            max,
        }
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.var.sqrt()
    }
}

/// Five-number summary for boxplots (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl BoxplotSummary {
    /// Compute the five-number summary of a sample.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> BoxplotSummary {
        BoxplotSummary {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Render as a compact `min [q1 | med | q3] max` string.
    pub fn compact(&self) -> String {
        format!(
            "{:.2} [{:.2} | {:.2} | {:.2}] {:.2}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_alpha_one_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(ema(&xs, 1.0), xs.to_vec());
    }

    #[test]
    fn ema_smooths_toward_history() {
        let xs = [0.0, 10.0];
        let y = ema(&xs, 0.3);
        assert_eq!(y[0], 0.0);
        assert!((y[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ema_is_bounded_by_input_range() {
        let xs = [2.0, 8.0, 4.0, 6.0, 3.0];
        for y in ema(&xs, 0.4) {
            assert!((2.0..=8.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ema_rejects_zero_alpha() {
        let _ = ema(&[1.0], 0.0);
    }

    #[test]
    fn time_to_target_finds_first_crossing() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let accs = [0.1, 0.3, 0.25, 0.5];
        assert_eq!(time_to_target(&times, &accs, 0.3), Some(2.0));
        assert_eq!(time_to_target(&times, &accs, 0.05), Some(1.0));
        assert_eq!(time_to_target(&times, &accs, 0.9), None);
        assert_eq!(time_to_target(&[], &[], 0.1), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn time_to_target_rejects_ragged_input() {
        let _ = time_to_target(&[1.0], &[], 0.1);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gini_known_values() {
        // empty / all-zero / uniform: perfect equality
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(gini(&[5.0, 5.0, 5.0, 5.0]), 0.0);
        // one client does everything: G = (n-1)/n
        assert!((gini(&[0.0, 0.0, 0.0, 12.0]) - 0.75).abs() < 1e-12);
        // textbook example: [1, 2, 3, 4] -> G = 0.25
        assert!((gini(&[1.0, 2.0, 3.0, 4.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_is_permutation_invariant_and_bounded() {
        let a = [3.0, 0.0, 7.0, 1.0, 9.0];
        let b = [9.0, 1.0, 3.0, 7.0, 0.0];
        assert_eq!(gini(&a), gini(&b));
        assert!((0.0..=1.0).contains(&gini(&a)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gini_rejects_negative_input() {
        let _ = gini(&[1.0, -1.0]);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.var - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_single_value_has_zero_var() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn boxplot_orders_quartiles() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let b = BoxplotSummary::of(&xs);
        assert_eq!(b.min, 0.0);
        assert_eq!(b.q1, 25.0);
        assert_eq!(b.median, 50.0);
        assert_eq!(b.q3, 75.0);
        assert_eq!(b.max, 100.0);
        assert_eq!(b.iqr(), 50.0);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
    }
}
