//! Table rendering and result artifacts.
//!
//! Every experiment binary prints a fixed-width table of
//! paper-value-vs-measured-value rows and writes the same data as JSON under
//! `results/`, so EXPERIMENTS.md can be regenerated mechanically.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with fixed-width columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Serialize `value` as pretty JSON under `results/<name>.json`, creating
/// the directory if needed. Returns the written path.
pub fn save_json<T: Serialize>(
    results_dir: &Path,
    name: &str,
    value: &T,
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(results_dir)?;
    let path = results_dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(&path, json)?;
    Ok(path)
}

/// Format a speedup factor the way the paper prints it (`1.75x`, `>2.86x`).
pub fn speedup(rounds_baseline: Option<usize>, rounds_method: usize) -> String {
    match rounds_baseline {
        Some(r) => format!("{:.2}x", r as f64 / rounds_method as f64),
        None => ">-x (baseline never reached target)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "rounds"]);
        t.row(&["FedTrip".into(), "28".into()]);
        t.row(&["FedAvg".into(), "49".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // columns aligned: "rounds" starts at the same offset everywhere
        let off = lines[1].find("rounds").unwrap();
        assert_eq!(&lines[3][off..off + 2], "28");
        assert_eq!(&lines[4][off..off + 2], "49");
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new("m", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn save_json_round_trips() {
        let dir = std::env::temp_dir().join("fedtrip_report_test");
        let path = save_json(&dir, "unit", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(Some(49), 28), "1.75x");
        assert!(speedup(None, 28).starts_with('>'));
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = Table::new("", &["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
