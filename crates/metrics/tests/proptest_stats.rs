//! Property-based tests for the participation-fairness metric: the Gini
//! coefficient must be a true inequality index — bounded in `[0, 1]`,
//! exactly 0 for uniform participation, invariant under permutation of the
//! clients, and monotone under the classic transfer principle (moving
//! participation from a busy client to an idle one never increases it).

use fedtrip_metrics::gini;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Gini of any non-negative sample lands in `[0, 1]`.
    #[test]
    fn gini_is_bounded(xs in prop::collection::vec(0.0f64..1e6, 0..64)) {
        let g = gini(&xs);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g} out of [0,1]");
    }

    /// Uniform participation is perfect equality: exactly 0 for any count
    /// and federation size (including the all-zero federation).
    #[test]
    fn gini_of_uniform_sample_is_zero(x in 0.0f64..1e6, n in 1usize..64) {
        let xs = vec![x; n];
        prop_assert_eq!(gini(&xs), 0.0);
    }

    /// The index scores the *distribution*, not the client ordering:
    /// shuffling the sample (here: reversing and rotating, which generate
    /// enough of the permutation group to catch order-sensitivity bugs)
    /// never changes it.
    #[test]
    fn gini_is_permutation_invariant(
        xs in prop::collection::vec(0.0f64..1e6, 1..64),
        rot in 0usize..64,
    ) {
        let g = gini(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        prop_assert_eq!(gini(&rev), g);
        let mut rotated = xs.clone();
        rotated.rotate_left(rot % xs.len());
        prop_assert_eq!(gini(&rotated), g);
    }

    /// Transfer principle: moving participation from a harder-working
    /// client to a less-busy one (without overshooting) never increases
    /// inequality.
    #[test]
    fn gini_respects_transfers(
        xs in prop::collection::vec(0.0f64..1e3, 2..32),
        frac in 0.0f64..0.5,
    ) {
        let hi = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let lo = xs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        prop_assume!(hi != lo && xs[hi] > xs[lo]);
        let before = gini(&xs);
        let mut after = xs.clone();
        let amount = frac * (xs[hi] - xs[lo]);
        after[hi] -= amount;
        after[lo] += amount;
        prop_assert!(
            gini(&after) <= before + 1e-12,
            "transfer raised gini: {} -> {}",
            before,
            gini(&after)
        );
    }

    /// Full concentration — one client does all the work — is the maximal
    /// inequality the index can report for that federation size:
    /// `(n-1)/n`.
    #[test]
    fn gini_of_full_concentration_is_n_minus_one_over_n(
        x in 1.0f64..1e6,
        n in 2usize..64,
        pos in 0usize..64,
    ) {
        let mut xs = vec![0.0; n];
        xs[pos % n] = x;
        let want = (n as f64 - 1.0) / n as f64;
        prop_assert!((gini(&xs) - want).abs() < 1e-12);
    }
}
