//! # fedtrip-models
//!
//! The model zoo of the FedTrip paper (§V-A "Models", Table III):
//!
//! * [`mlp`] — 2 fully-connected layers (100, then `classes` neurons), ReLU
//!   after the first. Used on MNIST and FMNIST.
//! * [`cnn`] — a LeNet-5 variant: three 5x5 convolutions followed by
//!   fully-connected layers of 84 and `classes` neurons. Used on MNIST,
//!   FMNIST and EMNIST. Matches the paper's 0.24 MB communication size.
//! * [`alexnet_small`] — an AlexNet-style network for 32x32 RGB inputs
//!   (CIFAR-10), in the paper's ~2.7 M-parameter / ~10 MB class.
//! * [`tiny_mlp`] / [`tiny_cnn`] — reduced models for smoke tests and CI.
//!
//! Every model marks a **feature layer** (the activation after the
//! penultimate fully-connected layer), which MOON's model-contrastive loss
//! taps. Model statistics for reproducing Table III come from
//! [`ModelStats`].
//!
//! Note on Table III: the paper lists MLP at "0.8 M" and CNN at "0.62 M"
//! parameters, which is inconsistent with its own communication sizes
//! (0.3 MB and 0.24 MB at 4 bytes/parameter imply 0.08 M and 0.062 M). We
//! follow the communication sizes — which also match the actual LeNet-5 /
//! 2-layer-MLP architectures described in the text — and flag the factor-10
//! typo in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use fedtrip_data::synth::DatasetKind;
use fedtrip_tensor::conv::ConvGeom;
use fedtrip_tensor::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use fedtrip_tensor::rng::Prng;
use fedtrip_tensor::rng_tags;
use fedtrip_tensor::Sequential;
use serde::{Deserialize, Serialize};

/// The models evaluated in the paper, plus reduced variants for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// 2-layer MLP (784-100-classes).
    Mlp,
    /// LeNet-5 style CNN (3 conv 5x5 + FC-84 + FC-classes).
    Cnn,
    /// AlexNet-style CNN for 32x32 RGB inputs.
    AlexNet,
    /// Compact CIFAR CNN used as the default-scale stand-in for AlexNet
    /// (same input shape, ~30x cheaper per sample on a single core).
    CifarCnn,
    /// Reduced MLP for smoke tests (runs in milliseconds).
    TinyMlp,
    /// Reduced CNN for smoke tests.
    TinyCnn,
}

impl ModelKind {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mlp => "MLP",
            ModelKind::Cnn => "CNN",
            ModelKind::AlexNet => "AlexNet",
            ModelKind::CifarCnn => "CifarCNN",
            ModelKind::TinyMlp => "TinyMLP",
            ModelKind::TinyCnn => "TinyCNN",
        }
    }

    /// Build this model for a given input shape `[C, H, W]` and class count.
    ///
    /// # Panics
    /// Panics when the input shape is incompatible (e.g. AlexNet on
    /// grayscale 28x28 input).
    pub fn build(&self, input_shape: &[usize; 3], classes: usize, seed: u64) -> Sequential {
        let mut rng = Prng::derive(seed, &[rng_tags::MODEL_INIT]);
        match self {
            ModelKind::Mlp => mlp(input_shape, classes, &mut rng),
            ModelKind::Cnn => cnn(input_shape, classes, &mut rng),
            ModelKind::AlexNet => alexnet_small(input_shape, classes, &mut rng),
            ModelKind::CifarCnn => cifar_cnn(input_shape, classes, &mut rng),
            ModelKind::TinyMlp => tiny_mlp(input_shape, classes, &mut rng),
            ModelKind::TinyCnn => tiny_cnn(input_shape, classes, &mut rng),
        }
    }

    /// The model the paper pairs with each dataset by default
    /// (Table IV columns).
    pub fn default_for(dataset: DatasetKind) -> ModelKind {
        match dataset {
            DatasetKind::MnistLike | DatasetKind::FmnistLike | DatasetKind::EmnistLike => {
                ModelKind::Cnn
            }
            DatasetKind::Cifar10Like => ModelKind::AlexNet,
        }
    }
}

/// Statistics of a built model, for Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Trainable parameter count.
    pub params: usize,
    /// Bytes transferred when the model is communicated (f32 parameters).
    pub comm_bytes: usize,
    /// Analytic forward FLOPs for one sample.
    pub flops_forward: u64,
    /// Analytic backward FLOPs for one sample.
    pub flops_backward: u64,
}

impl ModelStats {
    /// Compute statistics for a built network.
    pub fn of(net: &Sequential) -> ModelStats {
        ModelStats {
            params: net.num_params(),
            comm_bytes: net.num_params() * std::mem::size_of::<f32>(),
            flops_forward: net.flops_forward(),
            flops_backward: net.flops_backward(),
        }
    }

    /// Communication size in megabytes (paper Table III units).
    pub fn comm_mb(&self) -> f64 {
        self.comm_bytes as f64 / 1.0e6
    }

    /// Forward cost in MFLOPs (paper Table III units).
    pub fn mflops_forward(&self) -> f64 {
        self.flops_forward as f64 / 1.0e6
    }
}

/// 2-layer MLP: `flatten -> 100 -> ReLU (features) -> classes`.
pub fn mlp(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    let in_dim: usize = input_shape.iter().product();
    Sequential::new(input_shape)
        .with(Flatten::new())
        .with(Dense::new(in_dim, 100, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(100, classes, rng))
}

/// LeNet-5 variant used by the paper on MNIST / FMNIST / EMNIST:
/// three 5x5 convolutions, two max-pools, FC-84 (features), FC-classes.
///
/// # Panics
/// Panics unless the input is `[1, 28, 28]`.
pub fn cnn(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    assert_eq!(
        input_shape,
        &[1, 28, 28],
        "the paper's CNN expects 28x28 grayscale input"
    );
    // conv1: 1->6, 5x5, pad 2 => 28x28; pool => 14x14
    let g1 = ConvGeom {
        in_c: 1,
        in_h: 28,
        in_w: 28,
        out_c: 6,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    // conv2: 6->16, 5x5, valid => 10x10; pool => 5x5
    let g2 = ConvGeom {
        in_c: 6,
        in_h: 14,
        in_w: 14,
        out_c: 16,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 0,
    };
    // conv3: 16->120, 5x5, valid => 1x1
    let g3 = ConvGeom {
        in_c: 16,
        in_h: 5,
        in_w: 5,
        out_c: 120,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 0,
    };
    Sequential::new(input_shape)
        .with(Conv2d::new(g1, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(6, 28, 28, 2))
        .with(Conv2d::new(g2, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(16, 10, 10, 2))
        .with(Conv2d::new(g3, rng))
        .with(Relu::new())
        .with(Flatten::new())
        .with(Dense::new(120, 84, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(84, classes, rng))
}

/// AlexNet-style CNN for CIFAR-scale 32x32 RGB inputs (~2.5 M parameters,
/// the paper's 10 MB / 2.7 M-parameter class).
///
/// # Panics
/// Panics unless the input is `[3, 32, 32]`.
pub fn alexnet_small(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    assert_eq!(
        input_shape,
        &[3, 32, 32],
        "AlexNet-small expects 32x32 RGB input"
    );
    let g1 = ConvGeom {
        in_c: 3,
        in_h: 32,
        in_w: 32,
        out_c: 64,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    let g2 = ConvGeom {
        in_c: 64,
        in_h: 16,
        in_w: 16,
        out_c: 192,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    let g3 = ConvGeom {
        in_c: 192,
        in_h: 8,
        in_w: 8,
        out_c: 256,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let g4 = ConvGeom {
        in_c: 256,
        in_h: 8,
        in_w: 8,
        out_c: 192,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    Sequential::new(input_shape)
        .with(Conv2d::new(g1, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(64, 32, 32, 2))
        .with(Conv2d::new(g2, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(192, 16, 16, 2))
        .with(Conv2d::new(g3, rng))
        .with(Relu::new())
        .with(Conv2d::new(g4, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(192, 8, 8, 2))
        .with(Flatten::new())
        .with(Dense::new(192 * 4 * 4, 384, rng))
        .with(Relu::new())
        .with(Dense::new(384, 192, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(192, classes, rng))
}

/// Compact CIFAR CNN: two 5x5 convolutions + FC head. The default-scale
/// stand-in for AlexNet on single-core machines (same input, same API).
///
/// # Panics
/// Panics unless the input is `[3, 32, 32]`.
pub fn cifar_cnn(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    assert_eq!(
        input_shape,
        &[3, 32, 32],
        "cifar_cnn expects 32x32 RGB input"
    );
    let g1 = ConvGeom {
        in_c: 3,
        in_h: 32,
        in_w: 32,
        out_c: 12,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    let g2 = ConvGeom {
        in_c: 12,
        in_h: 16,
        in_w: 16,
        out_c: 24,
        k_h: 5,
        k_w: 5,
        stride: 1,
        pad: 2,
    };
    Sequential::new(input_shape)
        .with(Conv2d::new(g1, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(12, 32, 32, 2))
        .with(Conv2d::new(g2, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(24, 16, 16, 2))
        .with(Flatten::new())
        .with(Dense::new(24 * 8 * 8, 96, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(96, classes, rng))
}

/// Reduced MLP for smoke tests: `flatten -> 32 -> ReLU -> classes`.
pub fn tiny_mlp(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    let in_dim: usize = input_shape.iter().product();
    Sequential::new(input_shape)
        .with(Flatten::new())
        .with(Dense::new(in_dim, 32, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(32, classes, rng))
}

/// Reduced CNN for smoke tests: one 3x3 conv + pool + FC head.
///
/// Works for any even-sized input.
pub fn tiny_cnn(input_shape: &[usize; 3], classes: usize, rng: &mut Prng) -> Sequential {
    let [c, h, w] = *input_shape;
    assert!(h % 2 == 0 && w % 2 == 0, "tiny_cnn needs even input dims");
    let g = ConvGeom {
        in_c: c,
        in_h: h,
        in_w: w,
        out_c: 4,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    Sequential::new(input_shape)
        .with(Conv2d::new(g, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(4, h, w, 2))
        .with(Flatten::new())
        .with(Dense::new(4 * (h / 2) * (w / 2), 16, rng))
        .with(Relu::new())
        .mark_features()
        .with(Dense::new(16, classes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtrip_tensor::Tensor;

    #[test]
    fn mlp_matches_paper_comm_size() {
        let net = ModelKind::Mlp.build(&[1, 28, 28], 10, 0);
        let s = ModelStats::of(&net);
        // paper Table III: 0.3 MB, 0.08 MFLOPs (MAC counting)
        assert_eq!(s.params, 784 * 100 + 100 + 100 * 10 + 10);
        // 4 bytes per f32 parameter; 79510 params ~= 0.318 MB
        let expected_mb = s.params as f64 * 4.0 / 1.0e6;
        assert!(
            (s.comm_mb() - expected_mb).abs() < 0.01,
            "comm {}",
            s.comm_mb()
        );
        assert!(s.mflops_forward() > 0.1 && s.mflops_forward() < 0.2);
    }

    #[test]
    fn cnn_matches_paper_comm_size() {
        let net = ModelKind::Cnn.build(&[1, 28, 28], 10, 0);
        let s = ModelStats::of(&net);
        // paper Table III: 0.24 MB communication => ~62 k params
        assert_eq!(s.params, 61_706);
        assert!((s.comm_mb() - 0.2468).abs() < 0.005, "comm {}", s.comm_mb());
    }

    #[test]
    fn cnn_emnist_head_has_47_outputs() {
        let mut net = ModelKind::Cnn.build(&[1, 28, 28], 47, 0);
        assert_eq!(net.output_shape(), vec![47]);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        assert_eq!(net.forward(&x).shape(), &[2, 47]);
    }

    #[test]
    fn alexnet_in_paper_size_class() {
        let net = ModelKind::AlexNet.build(&[3, 32, 32], 10, 0);
        let s = ModelStats::of(&net);
        // paper: 2.72 M params, 10.42 MB
        assert!(
            (1.8e6..3.5e6).contains(&(s.params as f64)),
            "params {}",
            s.params
        );
        assert!(
            s.comm_mb() > 7.0 && s.comm_mb() < 14.0,
            "comm {}",
            s.comm_mb()
        );
    }

    #[test]
    fn all_models_forward_correct_shapes() {
        for (kind, shape, classes) in [
            (ModelKind::Mlp, [1usize, 28, 28], 10usize),
            (ModelKind::Cnn, [1, 28, 28], 10),
            (ModelKind::TinyMlp, [1, 8, 8], 5),
            (ModelKind::TinyCnn, [1, 8, 8], 5),
        ] {
            let mut net = kind.build(&shape, classes, 1);
            let x = Tensor::zeros(&[3, shape[0], shape[1], shape[2]]);
            let y = net.forward(&x);
            assert_eq!(y.shape(), &[3, classes], "{}", kind.name());
        }
    }

    #[test]
    fn alexnet_forward_shape() {
        let mut net = ModelKind::AlexNet.build(&[3, 32, 32], 10, 1);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        assert_eq!(net.forward(&x).shape(), &[2, 10]);
    }

    #[test]
    fn cifar_cnn_is_a_cheap_alexnet_stand_in() {
        let mut net = ModelKind::CifarCnn.build(&[3, 32, 32], 10, 1);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        assert_eq!(net.forward(&x).shape(), &[2, 10]);
        assert!(net.feature_layer().is_some());
        let c = ModelStats::of(&net);
        let a = ModelStats::of(&ModelKind::AlexNet.build(&[3, 32, 32], 10, 1));
        assert!(
            c.flops_forward * 10 < a.flops_forward,
            "stand-in not cheap enough: {} vs {}",
            c.flops_forward,
            a.flops_forward
        );
    }

    #[test]
    fn every_model_marks_a_feature_layer() {
        for (kind, shape) in [
            (ModelKind::Mlp, [1usize, 28, 28]),
            (ModelKind::Cnn, [1, 28, 28]),
            (ModelKind::TinyMlp, [1, 8, 8]),
            (ModelKind::TinyCnn, [1, 8, 8]),
        ] {
            let net = kind.build(&shape, 10, 2);
            assert!(net.feature_layer().is_some(), "{}", kind.name());
        }
        let net = ModelKind::AlexNet.build(&[3, 32, 32], 10, 2);
        assert!(net.feature_layer().is_some());
    }

    #[test]
    fn feature_tap_dims() {
        let mut net = ModelKind::Cnn.build(&[1, 28, 28], 10, 3);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let (_, f) = net.forward_with_features(&x);
        assert_eq!(f.shape(), &[2, 84]); // FC-84 activations
        let mut net = ModelKind::Mlp.build(&[1, 28, 28], 10, 3);
        let (_, f) = net.forward_with_features(&x);
        assert_eq!(f.shape(), &[2, 100]);
    }

    #[test]
    fn same_seed_same_init_different_seed_differs() {
        let a = ModelKind::Cnn.build(&[1, 28, 28], 10, 7);
        let b = ModelKind::Cnn.build(&[1, 28, 28], 10, 7);
        let c = ModelKind::Cnn.build(&[1, 28, 28], 10, 8);
        assert_eq!(a.params_flat(), b.params_flat());
        assert_ne!(a.params_flat(), c.params_flat());
    }

    #[test]
    fn default_model_mapping_matches_paper() {
        assert_eq!(
            ModelKind::default_for(DatasetKind::MnistLike),
            ModelKind::Cnn
        );
        assert_eq!(
            ModelKind::default_for(DatasetKind::Cifar10Like),
            ModelKind::AlexNet
        );
    }

    #[test]
    fn tiny_models_are_small_and_fast() {
        let net = ModelKind::TinyCnn.build(&[1, 8, 8], 5, 0);
        assert!(net.num_params() < 2_000, "{}", net.num_params());
    }

    #[test]
    fn flop_ordering_mlp_lt_cnn_lt_alexnet() {
        // paper Table III ordering: 0.08 < 0.42 << 145.93 MFLOPs
        let m = ModelStats::of(&ModelKind::Mlp.build(&[1, 28, 28], 10, 0));
        let c = ModelStats::of(&ModelKind::Cnn.build(&[1, 28, 28], 10, 0));
        let a = ModelStats::of(&ModelKind::AlexNet.build(&[3, 32, 32], 10, 0));
        assert!(m.flops_forward < c.flops_forward);
        assert!(c.flops_forward < a.flops_forward / 50);
    }
}
